package fleet

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
)

func TestScaleValidation(t *testing.T) {
	if _, err := RunScale(ScaleConfig{Devices: 0}); err == nil {
		t.Fatal("zero-device scale run accepted")
	}
}

// scaleCounters strips the timing fields so runs are comparable.
func scaleCounters(r ScaleResult) ScaleResult {
	r.WallSeconds = 0
	r.RealTimeFactor = 0
	r.TicksPerSecond = 0
	return r
}

func TestScaleDeterministicAcrossRuns(t *testing.T) {
	cfg := ScaleConfig{Devices: 500, Seed: 42, Workers: 4, Duration: 2 * time.Second, LossProb: 0.05}
	a, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scaleCounters(a) != scaleCounters(b) {
		t.Fatalf("scale run not deterministic:\n%+v\nvs\n%+v", scaleCounters(a), scaleCounters(b))
	}
	if a.Frames == 0 || a.Switches == 0 {
		t.Fatalf("scale run produced no traffic: %+v", a)
	}
}

// TestScaleWorkerCountIndependent pins the striping contract: every
// per-device stream derives from (seed, slot) alone, so the worker count
// must not change any counter.
func TestScaleWorkerCountIndependent(t *testing.T) {
	base := ScaleConfig{Devices: 300, Seed: 7, Duration: 2 * time.Second, LossProb: 0.1}
	var ref ScaleResult
	for i, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := RunScale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got.Workers = 0
		got = scaleCounters(got)
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("results depend on worker count:\n%d workers: %+v\nvs\n%+v", workers, got, ref)
		}
	}
}

func TestScaleLossAccounting(t *testing.T) {
	res, err := RunScale(ScaleConfig{Devices: 200, Seed: 3, Workers: 2, Duration: 2 * time.Second, LossProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 || res.Retransmits != res.Lost {
		t.Fatalf("loss accounting: %+v", res)
	}
	// The modelled ARQ guarantees delivery: every sent frame arrives.
	if res.Delivered != res.Frames {
		t.Fatalf("delivered %d != frames %d under reliable model", res.Delivered, res.Frames)
	}
	if res.MaxWindow == 0 {
		t.Fatal("ARQ window bookkeeping never saw an outstanding frame")
	}
}

// TestScaleSmoke100k is the CI large-fleet gate: 100k packed devices, a
// short virtual horizon, and the aggregate virtual seconds must beat the
// wall clock (the faster-than-real-time criterion at the 100k point).
func TestScaleSmoke100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k smoke skipped in -short")
	}
	res, err := RunScale(ScaleConfig{Devices: 100_000, Seed: 1, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("100k fleet produced no frames")
	}
	if res.RealTimeFactor < 1 {
		t.Fatalf("100k devices slower than real time: factor %.2f (%.1f virtual s in %.1f wall s)",
			res.RealTimeFactor, res.VirtualSeconds, res.WallSeconds)
	}
	t.Logf("100k devices: %.0fx real time, %.0f ticks/s, %d frames",
		res.RealTimeFactor, res.TicksPerSecond, res.Frames)
}

// TestSlabTickZeroAlloc pins the batched tick path: advancing a stripe
// must not allocate.
func TestSlabTickZeroAlloc(t *testing.T) {
	slab, err := core.NewStateSlab(core.SlabConfig{Devices: 256, Seed: 9, LossProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(100, func() {
		at += 40 * time.Millisecond
		slab.TickStripe(0, slab.Len(), at)
	})
	if allocs != 0 {
		t.Fatalf("slab tick allocates %.1f allocs/op, want 0", allocs)
	}
}
