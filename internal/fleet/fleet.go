// Package fleet runs many independently seeded DistScroll devices
// concurrently against one shared host-side Hub. The paper builds "a self
// contained interaction device that can be wirelessly linked to a PC"
// (Section 3.2); this package scales that host to a population of devices,
// the way large scrolling-evaluation testbeds exercise one technique across
// many devices and configurations at once.
//
// Each device owns its virtual clock, scheduler and random stream, so a
// device's behaviour — and therefore its event stream at the hub — is a
// pure function of the fleet seed and its index, independent of goroutine
// interleaving. Only the hub's session map and aggregate counters are
// shared, and those are commutative.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Step is one scripted action a device performs: reach for a menu entry
// with a minimum-jerk glide, dwell until the cursor settles, then
// optionally press a button.
type Step struct {
	// Entry is the target entry index at the device's current menu level.
	Entry int
	// Glide is the duration of the reach; Dwell the settle time after it.
	Glide time.Duration
	Dwell time.Duration
	// Select presses the select button after dwelling; Back presses the
	// back button. Select wins if both are set.
	Select bool
	Back   bool
}

// Script is the menu workload every device in the fleet runs.
type Script []Step

// ScriptFor returns the default workload for a menu level of n entries:
// glide far, glide back, then glide to the middle and select. It exercises
// scrolling in both directions plus a selection round-trip.
func ScriptFor(n int) Script {
	last := n - 1
	return Script{
		{Entry: last, Glide: 400 * time.Millisecond, Dwell: 300 * time.Millisecond},
		{Entry: last / 4, Glide: 400 * time.Millisecond, Dwell: 300 * time.Millisecond},
		{Entry: last / 2, Glide: 300 * time.Millisecond, Dwell: 300 * time.Millisecond, Select: true},
	}
}

// Config parameterises a fleet run.
type Config struct {
	// Devices is the fleet size.
	Devices int
	// Seed is the master seed; every device derives its own independent
	// seed from it, so the whole fleet is reproducible from one number.
	Seed uint64
	// Core is the per-device template. Seed, DeviceID, Sink and the event
	// log flag are overwritten per device. The zero value means
	// core.DefaultConfig().
	Core core.Config
	// Menu builds a fresh menu tree per device (trees hold navigation
	// state, so devices cannot share one). Nil means a flat 12-entry menu.
	Menu func() *menu.Node
	// Script is the workload every device runs; nil picks ScriptFor sized
	// to the menu's root level.
	Script Script
	// Workers bounds how many devices simulate concurrently; <= 0 runs
	// every device concurrently. RunAll spawns exactly this many worker
	// goroutines (capped at the fleet size) and feeds them device indices.
	Workers int
	// Reliable wraps every device's RF channel in the ARQ retransmission
	// layer and wires the hub sessions to emit cumulative acks over each
	// device's ReverseLink, so every event stream arrives complete and in
	// order even on a lossy channel.
	Reliable bool
	// ARQ tunes the reliable-delivery layer (window, timeouts, backoff);
	// zero fields take defaults. Only meaningful with Reliable set.
	ARQ rf.ARQConfig
	// Metrics instruments the whole fleet: every device's firmware and
	// link register collectors and the shared hub records per-device
	// receive counters and end-to-end latency histograms. Nil disables
	// telemetry at zero cost.
	Metrics *telemetry.Registry
	// ReportEvery, with Metrics and OnReport set, emits a registry
	// snapshot to OnReport on that wall-clock period while RunAll is in
	// flight, plus one final snapshot when the run completes. Metrics do
	// not perturb the simulation: device behaviour stays a pure function
	// of the fleet seed.
	ReportEvery time.Duration
	OnReport    func(*telemetry.Snapshot)
	// Tracing equips every device with a per-device flight recorder
	// covering its whole pipeline — firmware, ARQ, link, and the hub
	// session, all of which run on that device's scheduler goroutine. After
	// RunAll joins its workers the tracer's recorders hold the merged
	// causal trace of the run (export with WritePerfetto / WriteText). Nil
	// disables tracing at the cost of one predictable branch per hop.
	Tracing *tracing.Tracer
	// Hub overrides the host side the fleet delivers into. Nil builds the
	// default in-process core.Hub; a hubnet.Loopback routes every frame
	// through the networked gateway's full encode→decode→shard path, and
	// a hubnet.Remote forwards frames to an out-of-process server. The
	// backend must retain session event logs for handler replay to see
	// anything (hubnet honours its KeepLogs config).
	Hub HubBackend
}

// HubBackend is the host side a fleet delivers into: the subset of
// *core.Hub the runner needs, satisfied as-is by the in-process hub and
// by the networked gateway's loopback and remote modes.
type HubBackend interface {
	// Handle is the rf sink shared by every device's link.
	Handle(payload []byte, at time.Duration)
	// Session returns (creating if new) the session a device id routes
	// to; the runner pre-registers and wires tracers/acks through it.
	Session(id uint32) *core.Session
	// DeviceStats returns one device's receive accounting, false when
	// the backend cannot see it locally (remote hubs).
	DeviceStats(id uint32) (core.HostStats, bool)
}

// Result is one device's outcome, deterministic given the fleet seed.
type Result struct {
	// Device is the wire id (1-based; 0 is reserved for legacy traffic).
	Device uint32
	// Err is the first firmware or scenario error, nil on success.
	Err error
	// FinalCursor is the menu cursor after the script completed.
	FinalCursor int
	// Host is this device's receive accounting at the hub.
	Host core.HostStats
	// Link is the device's channel accounting (sent/delivered/lost).
	Link rf.LinkStats
	// ARQ and Acks are the reliable-delivery accounting; zero-valued
	// unless the fleet ran with Config.Reliable.
	ARQ  rf.ARQStats
	Acks rf.ReverseStats
	// Elapsed is the virtual time the device simulated.
	Elapsed time.Duration
}

// Totals aggregates a fleet run.
type Totals struct {
	Devices    int
	Errors     int
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Corrupted  uint64
	Decoded    uint64
	Events     uint64
	MissedSeq  uint64
	Duplicates uint64
	Reordered  uint64
	BadFrames  uint64
	// Reliable-delivery aggregates (zero without Config.Reliable).
	Retransmits   uint64
	Timeouts      uint64
	QueueDrops    uint64
	RetryDrops    uint64
	AcksSent      uint64
	AcksLost      uint64
	AcksDelivered uint64
	Stale         uint64
	Resyncs       uint64
	// VirtualSeconds sums per-device simulated time; FramesPerSecond is
	// the aggregate decode throughput against that budget.
	VirtualSeconds  float64
	FramesPerSecond float64
}

// Runner owns a fleet of assembled devices and the shared hub backend.
type Runner struct {
	cfg     Config
	hub     HubBackend
	devices []*core.Device
	ids     []uint32
}

// New assembles a fleet: n devices with derived seeds and wire ids 1..n,
// all delivering telemetry into one shared hub.
func New(cfg Config) (*Runner, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Menu == nil {
		cfg.Menu = func() *menu.Node { return menu.FlatMenu(12) }
	}
	// core.Config holds func fields and so is not comparable; a template
	// with neither a radio nor a sample period is taken as the zero value.
	if !cfg.Core.Radio && cfg.Core.Firmware.SamplePeriod == 0 {
		cfg.Core = core.DefaultConfig()
	}

	hub := cfg.Hub
	if hub == nil {
		hub = core.NewHubWithMetrics(true, cfg.Metrics)
	}
	r := &Runner{cfg: cfg, hub: hub}
	master := sim.NewRand(cfg.Seed)
	for i := 0; i < cfg.Devices; i++ {
		id := uint32(i + 1)
		c := cfg.Core
		c.Seed = master.Uint64()
		c.DeviceID = id
		c.Sink = r.hub.Handle
		c.Metrics = cfg.Metrics
		c.Tracing = cfg.Tracing
		if cfg.Reliable {
			c.Reliable = true
			c.ARQ = cfg.ARQ
		}
		// The hub keeps the logs; the per-device host would be a second,
		// unused copy.
		c.KeepEventLog = false
		dev, err := core.NewDevice(c, cfg.Menu())
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", id, err)
		}
		r.devices = append(r.devices, dev)
		r.ids = append(r.ids, id)
		// Pre-register so Devices() iterates in fleet order even for
		// devices whose first frame arrives late.
		sess := r.hub.Session(id)
		if dev.Trace != nil {
			// The hub session for this device is driven by this device's
			// delivery callbacks, so it shares the device's single-writer
			// recorder: the whole firmware→session chain lands in one
			// causally ordered buffer.
			sess.AttachTracer(dev.Trace)
		}
		if dev.Reverse != nil {
			// Close the ack loop: the hub session answers every frame from
			// this device with a cumulative ack over the device's own
			// reverse link. The ack runs inside the device's delivery
			// callback, so the round trip stays on that device's clock.
			rev := dev.Reverse
			sess.EnableReliable(func(cum uint16) { rev.SendAck(id, cum) })
		}
	}
	if r.cfg.Script == nil {
		r.cfg.Script = ScriptFor(r.devices[0].Menu.Len())
	}
	return r, nil
}

// Hub returns the shared in-process host hub, nil when the fleet runs
// against a networked backend (use Backend then).
func (r *Runner) Hub() *core.Hub {
	h, _ := r.hub.(*core.Hub)
	return h
}

// Backend returns the hub backend the fleet delivers into.
func (r *Runner) Backend() HubBackend { return r.hub }

// Len returns the fleet size.
func (r *Runner) Len() int { return len(r.devices) }

// Device returns the i-th assembled device (0-based fleet index).
func (r *Runner) Device(i int) *core.Device { return r.devices[i] }

// ID returns the wire id of the i-th device.
func (r *Runner) ID(i int) uint32 { return r.ids[i] }

// Session returns the hub session of the i-th device.
func (r *Runner) Session(i int) *core.Session { return r.hub.Session(r.ids[i]) }

// RunAll simulates every device through the script concurrently, bounded by
// Config.Workers, and returns per-device results in fleet order. The first
// device error is also returned, with all remaining devices still run to
// completion.
func (r *Runner) RunAll() ([]Result, error) {
	workers := r.cfg.Workers
	if workers <= 0 || workers > len(r.devices) {
		workers = len(r.devices)
	}
	var rep *telemetry.Reporter
	if r.cfg.Metrics != nil && r.cfg.OnReport != nil && r.cfg.ReportEvery > 0 {
		rep = telemetry.StartReporter(r.cfg.Metrics, r.cfg.ReportEvery, r.cfg.OnReport)
	}
	// A fixed worker pool pulling device indices from a channel: a
	// 100k-device fleet with Workers=32 holds 32 goroutines, not 100k parked
	// on a semaphore, keeping scheduler and stack pressure proportional to
	// the configured concurrency rather than the fleet size.
	idx := make(chan int)
	results := make([]Result, len(r.devices))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runDevice(i)
			}
		}()
	}
	for i := range r.devices {
		idx <- i
	}
	close(idx)
	wg.Wait()
	// Stop emits one final snapshot after every device has drained, so the
	// last report is the complete run.
	rep.Stop()
	for _, res := range results {
		if res.Err != nil {
			return results, fmt.Errorf("fleet: device %d: %w", res.Device, res.Err)
		}
	}
	return results, nil
}

// runDevice drives one device through the script on its own virtual clock.
func (r *Runner) runDevice(i int) Result {
	dev := r.devices[i]
	id := r.ids[i]
	res := Result{Device: id}

	fail := func(err error) Result {
		res.Err = err
		r.collect(dev, id, &res)
		return res
	}

	// Let the firmware boot and the filter settle before the workload.
	if err := dev.Run(500 * time.Millisecond); err != nil {
		return fail(err)
	}
	for _, st := range r.cfg.Script {
		dist, err := dev.DistanceForEntry(st.Entry)
		if err != nil {
			return fail(fmt.Errorf("step entry %d: %w", st.Entry, err))
		}
		dev.GlideTo(dist, st.Glide)
		if err := dev.Run(st.Glide + st.Dwell); err != nil {
			return fail(err)
		}
		switch {
		case st.Select:
			dev.PressSelect()
		case st.Back:
			dev.PressBack()
		default:
			continue
		}
		if err := dev.Run(300 * time.Millisecond); err != nil {
			return fail(err)
		}
	}
	// Stop the firmware tick and drain in-flight radio deliveries so the
	// hub accounting is complete.
	dev.Stop()
	if err := dev.Run(time.Second); err != nil {
		return fail(err)
	}
	if dev.ARQ != nil {
		// Reliable drain: keep the clock moving until every outstanding
		// frame is acked (or abandoned by the retry budget). The bound
		// comfortably covers MaxRTO-paced retransmits of a full window.
		for i := 0; i < 40 && dev.ARQ.Outstanding() > 0; i++ {
			if err := dev.Run(250 * time.Millisecond); err != nil {
				return fail(err)
			}
		}
		// The window can empty while final retransmitted copies (acked via
		// an earlier copy) are still on the air — under heavy retransmission
		// the half-duplex airtime queue can stretch seconds past the last
		// ack. Flush until every sent frame is accounted for so the loss
		// check below is exact.
		for i := 0; i < 80; i++ {
			s := transportStats(dev)
			if s.Sent == s.Delivered+s.Lost+s.Corrupted {
				break
			}
			if err := dev.Run(250 * time.Millisecond); err != nil {
				return fail(err)
			}
		}
		if dev.Trace != nil && dev.ARQ.Outstanding() == 0 {
			// Post-drain sequence audit: with the window empty, every seq
			// the firmware used was delivered or abandoned-with-notice, so
			// the session must be expecting exactly the next fresh seq. A
			// mismatch is a frame that vanished without a skip notice — the
			// bug class the flight recorder exists to catch.
			await := r.hub.Session(id).AwaitSeq()
			if exp := uint16(dev.ARQ.Stats().Enqueued); await != exp {
				dev.Trace.Anomaly(tracing.HopSessionGap, await, dev.Clock.Now(),
					uint32(exp-await), 0,
					fmt.Sprintf("seq gap after drain: session awaits seq %d, sender used 0..%d", await, exp-1))
			}
		}
	}
	r.collect(dev, id, &res)
	// With the channel drained, every frame must be accounted for exactly
	// once: delivered to the hub, lost on air, or corrupted and rejected
	// by CRC. A violation means the link or decoder is double- or
	// under-counting, so surface it as a device error.
	if s := res.Link; s.Sent != s.Delivered+s.Lost+s.Corrupted {
		res.Err = fmt.Errorf("loss accounting: sent %d != delivered %d + lost %d + corrupted %d",
			s.Sent, s.Delivered, s.Lost, s.Corrupted)
	}
	return res
}

// transportStats reads the channel accounting of whichever transport the
// device was assembled with (*rf.Link, *rf.Pipe, and any custom backend
// that exposes link-shaped counters).
func transportStats(dev *core.Device) rf.LinkStats {
	if tr, ok := dev.Transport.(interface{ Stats() rf.LinkStats }); ok {
		return tr.Stats()
	}
	return rf.LinkStats{}
}

func (r *Runner) collect(dev *core.Device, id uint32, res *Result) {
	res.FinalCursor = dev.Cursor()
	res.Elapsed = dev.Clock.Now()
	if st, ok := r.hub.DeviceStats(id); ok {
		res.Host = st
	}
	res.Link = transportStats(dev)
	if dev.ARQ != nil {
		res.ARQ = dev.ARQ.Stats()
	}
	if dev.Reverse != nil {
		res.Acks = dev.Reverse.Stats()
	}
}

// Total aggregates per-device results into fleet-wide counters.
func (r *Runner) Total(results []Result) Totals {
	var t Totals
	t.Devices = len(results)
	for _, res := range results {
		if res.Err != nil {
			t.Errors++
		}
		t.Sent += res.Link.Sent
		t.Delivered += res.Link.Delivered
		t.Lost += res.Link.Lost
		t.Corrupted += res.Link.Corrupted
		t.Decoded += res.Host.Decoded
		t.Events += res.Host.Events
		t.MissedSeq += res.Host.MissedSeq
		t.Duplicates += res.Host.Duplicates
		t.Reordered += res.Host.Reordered
		t.BadFrames += res.Host.BadFrames
		t.Retransmits += res.ARQ.Retransmits
		t.Timeouts += res.ARQ.Timeouts
		t.QueueDrops += res.ARQ.QueueDrops
		t.RetryDrops += res.ARQ.RetryDrops
		t.AcksSent += res.Acks.AcksSent
		t.AcksLost += res.Acks.AcksLost
		t.AcksDelivered += res.Acks.AcksDelivered
		t.Stale += res.Host.Stale
		t.Resyncs += res.Host.Resyncs
		t.VirtualSeconds += res.Elapsed.Seconds()
	}
	if t.VirtualSeconds > 0 {
		t.FramesPerSecond = float64(t.Decoded) / t.VirtualSeconds
	}
	return t
}
