package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/telemetry"
)

func newDev(t *testing.T, seed uint64) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	dev, err := core.NewDevice(cfg, menu.FlatMenu(12))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Stop)
	return dev
}

// record captures a short scripted session.
func record(t *testing.T, seed uint64) *Trace {
	t.Helper()
	dev := newDev(t, seed)
	rec, err := Record(dev, "test-session", seed, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(26)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(8)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	dev.PressSelect()
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return rec.Stop()
}

func TestRecordCapturesSamplesAndEvents(t *testing.T) {
	tr := record(t, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) < 50 {
		t.Fatalf("samples = %d", len(tr.Samples))
	}
	if tr.CountKind("scroll") == 0 {
		t.Fatal("no scroll events recorded")
	}
	if tr.CountKind("select") == 0 {
		t.Fatal("no select event recorded")
	}
	if tr.Duration() < 1500*time.Millisecond {
		t.Fatalf("duration %v", tr.Duration())
	}
}

func TestStopFreezesTrace(t *testing.T) {
	dev := newDev(t, 2)
	rec, err := Record(dev, "s", 2, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr := rec.Stop()
	n := len(tr.Samples)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != n {
		t.Fatal("recorder still appending after Stop")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := record(t, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"samples\"") {
		t.Fatal("json missing samples")
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(tr.Samples) || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %d/%d samples, %d/%d events",
			len(back.Samples), len(tr.Samples), len(back.Events), len(tr.Events))
	}
	if back.Name != "test-session" || back.Seed != 3 {
		t.Fatalf("metadata: %+v", back)
	}
}

func TestLoadValidates(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"samples":[]}`)); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty: %v", err)
	}
	bad := `{"samples":[{"atMs":100,"distanceCm":10},{"atMs":50,"distanceCm":10}]}`
	if _, err := Load(strings.NewReader(bad)); !errors.Is(err, ErrUnordered) {
		t.Fatalf("unordered: %v", err)
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplayReproducesCursorPath(t *testing.T) {
	tr := record(t, 4)

	// Replay onto a fresh device with the same seed: the cursor must end
	// on the same entry.
	dev := newDev(t, 4)
	end, err := Replay(tr, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(end - dev.Clock.Now() + 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The recorded session ended at distance 8 on a 12-entry menu.
	wantDist := 8.0
	if got := dev.Distance(); got != wantDist {
		t.Fatalf("replayed distance %v, want %v", got, wantDist)
	}
	if dev.Host.Stats().Events == 0 {
		t.Fatal("replay produced no events")
	}
}

func TestReplayValidatesTrace(t *testing.T) {
	dev := newDev(t, 5)
	if _, err := Replay(&Trace{}, dev); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty replay: %v", err)
	}
	if _, err := Replay(&Trace{Samples: []Sample{{AtMs: 0}}}, nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	if _, err := Record(nil, "x", 1, 0); err == nil {
		t.Fatal("nil device accepted")
	}
}

// recordInstrumented captures a session from a metrics-equipped device and
// embeds the telemetry snapshot in the trace.
func recordInstrumented(t *testing.T, seed uint64) *Trace {
	t.Helper()
	reg := telemetry.New()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Metrics = reg
	dev, err := core.NewDevice(cfg, menu.FlatMenu(12))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Stop)
	rec, err := Record(dev, "instrumented", seed, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rec.AttachMetrics(reg)
	dev.SetDistance(26)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(8)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	return rec.Stop()
}

func TestRecorderEmbedsTelemetrySnapshot(t *testing.T) {
	tr := recordInstrumented(t, 5)
	if tr.Telemetry == nil {
		t.Fatal("no telemetry in trace")
	}
	if tr.Telemetry.Counters[telemetry.MetricFwCycles] == 0 {
		t.Fatal("telemetry snapshot empty")
	}
	if _, ok := tr.Telemetry.Histogram(telemetry.MetricHubE2ELatency); !ok {
		t.Fatal("no latency histogram in trace telemetry")
	}

	// The snapshot must survive the JSON round trip with its quantiles.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := back.Telemetry.Histogram(telemetry.MetricHubE2ELatency)
	if !ok || h.Count == 0 || h.P50 <= 0 {
		t.Fatalf("telemetry lost in round trip: ok=%v %+v", ok, h)
	}

	// An uninstrumented trace omits the field entirely.
	plain := record(t, 5)
	buf.Reset()
	if err := plain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"telemetry"`) {
		t.Fatal("uninstrumented trace serialised a telemetry field")
	}
}

func TestLatencyAndCounterShiftAcrossBuilds(t *testing.T) {
	a := recordInstrumented(t, 5)
	b := recordInstrumented(t, 6)
	shift, ok := LatencyShift(a, b, telemetry.MetricHubE2ELatency)
	if !ok {
		t.Fatal("latency shift unavailable on instrumented traces")
	}
	ha, _ := a.Telemetry.Histogram(telemetry.MetricHubE2ELatency)
	hb, _ := b.Telemetry.Histogram(telemetry.MetricHubE2ELatency)
	if want := hb.P50 - ha.P50; shift != want {
		t.Fatalf("shift %g, want %g", shift, want)
	}
	if d, ok := CounterShift(a, b, telemetry.MetricFwCycles); !ok || d == 0 && a.Telemetry.Counters[telemetry.MetricFwCycles] != b.Telemetry.Counters[telemetry.MetricFwCycles] {
		t.Fatalf("counter shift: ok=%v d=%d", ok, d)
	}

	plain := record(t, 5)
	if _, ok := LatencyShift(plain, b, telemetry.MetricHubE2ELatency); ok {
		t.Fatal("latency shift reported without telemetry")
	}
	if _, ok := CounterShift(plain, b, telemetry.MetricFwCycles); ok {
		t.Fatal("counter shift reported without telemetry")
	}
}
