package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/menu"
)

func newDev(t *testing.T, seed uint64) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	dev, err := core.NewDevice(cfg, menu.FlatMenu(12))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Stop)
	return dev
}

// record captures a short scripted session.
func record(t *testing.T, seed uint64) *Trace {
	t.Helper()
	dev := newDev(t, seed)
	rec, err := Record(dev, "test-session", seed, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(26)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(8)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	dev.PressSelect()
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return rec.Stop()
}

func TestRecordCapturesSamplesAndEvents(t *testing.T) {
	tr := record(t, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) < 50 {
		t.Fatalf("samples = %d", len(tr.Samples))
	}
	if tr.CountKind("scroll") == 0 {
		t.Fatal("no scroll events recorded")
	}
	if tr.CountKind("select") == 0 {
		t.Fatal("no select event recorded")
	}
	if tr.Duration() < 1500*time.Millisecond {
		t.Fatalf("duration %v", tr.Duration())
	}
}

func TestStopFreezesTrace(t *testing.T) {
	dev := newDev(t, 2)
	rec, err := Record(dev, "s", 2, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr := rec.Stop()
	n := len(tr.Samples)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != n {
		t.Fatal("recorder still appending after Stop")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := record(t, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"samples\"") {
		t.Fatal("json missing samples")
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(tr.Samples) || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %d/%d samples, %d/%d events",
			len(back.Samples), len(tr.Samples), len(back.Events), len(tr.Events))
	}
	if back.Name != "test-session" || back.Seed != 3 {
		t.Fatalf("metadata: %+v", back)
	}
}

func TestLoadValidates(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"samples":[]}`)); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty: %v", err)
	}
	bad := `{"samples":[{"atMs":100,"distanceCm":10},{"atMs":50,"distanceCm":10}]}`
	if _, err := Load(strings.NewReader(bad)); !errors.Is(err, ErrUnordered) {
		t.Fatalf("unordered: %v", err)
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplayReproducesCursorPath(t *testing.T) {
	tr := record(t, 4)

	// Replay onto a fresh device with the same seed: the cursor must end
	// on the same entry.
	dev := newDev(t, 4)
	end, err := Replay(tr, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(end - dev.Clock.Now() + 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The recorded session ended at distance 8 on a 12-entry menu.
	wantDist := 8.0
	if got := dev.Distance(); got != wantDist {
		t.Fatalf("replayed distance %v, want %v", got, wantDist)
	}
	if dev.Host.Stats().Events == 0 {
		t.Fatal("replay produced no events")
	}
}

func TestReplayValidatesTrace(t *testing.T) {
	dev := newDev(t, 5)
	if _, err := Replay(&Trace{}, dev); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty replay: %v", err)
	}
	if _, err := Replay(&Trace{Samples: []Sample{{AtMs: 0}}}, nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	if _, err := Record(nil, "x", 1, 0); err == nil {
		t.Fatal("nil device accepted")
	}
}
