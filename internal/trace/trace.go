// Package trace records and replays DistScroll sessions: the physical
// distance signal driving the device and every host-decoded event, as a
// JSON document. Traces make user-study sessions auditable and let a
// developer replay an interesting interaction against a modified firmware
// build.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// Sample is one distance observation.
type Sample struct {
	AtMs       int64   `json:"atMs"`
	DistanceCm float64 `json:"distanceCm"`
}

// Event is one host-side event.
type Event struct {
	AtMs  int64  `json:"atMs"`
	Kind  string `json:"kind"`
	Index int    `json:"index"`
}

// Trace is a recorded session.
type Trace struct {
	Name           string   `json:"name"`
	Seed           uint64   `json:"seed"`
	SamplePeriodMs int64    `json:"samplePeriodMs"`
	Samples        []Sample `json:"samples"`
	Events         []Event  `json:"events"`
	// Telemetry is the metrics snapshot taken when the recording stopped,
	// nil for uninstrumented sessions. Persisting it beside the samples
	// lets two recordings of the same scenario — say, before and after a
	// firmware change — be compared counter by counter and latency
	// distribution by latency distribution.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// Validation errors.
var (
	// ErrEmptyTrace is returned when replaying a trace without samples.
	ErrEmptyTrace = errors.New("trace: no samples")
	// ErrUnordered is returned when sample timestamps go backwards.
	ErrUnordered = errors.New("trace: samples out of order")
)

// Duration returns the time span covered by the samples.
func (t *Trace) Duration() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	return time.Duration(t.Samples[len(t.Samples)-1].AtMs) * time.Millisecond
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	if len(t.Samples) == 0 {
		return ErrEmptyTrace
	}
	last := int64(-1)
	for i, s := range t.Samples {
		if s.AtMs < last {
			return fmt.Errorf("%w: sample %d at %dms after %dms", ErrUnordered, i, s.AtMs, last)
		}
		last = s.AtMs
	}
	return nil
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	return nil
}

// Load reads a trace from JSON and validates it.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Recorder captures a live session from a device.
type Recorder struct {
	trace   *Trace
	cancel  func()
	done    bool
	metrics *telemetry.Registry
}

// AttachMetrics makes Stop embed a snapshot of the registry in the trace.
// Call it before Stop, typically right after Record with the same registry
// the device was assembled with.
func (r *Recorder) AttachMetrics(reg *telemetry.Registry) { r.metrics = reg }

// Record starts recording the device's distance signal at the given period
// and taps every host event. Stop finishes the recording.
func Record(dev *core.Device, name string, seed uint64, period time.Duration) (*Recorder, error) {
	if dev == nil {
		return nil, errors.New("trace: device is required")
	}
	if period <= 0 {
		period = 20 * time.Millisecond
	}
	rec := &Recorder{
		trace: &Trace{
			Name:           name,
			Seed:           seed,
			SamplePeriodMs: period.Milliseconds(),
		},
	}
	// Capture the starting distance immediately so replay starts right.
	rec.trace.Samples = append(rec.trace.Samples, Sample{
		AtMs:       dev.Clock.Now().Milliseconds(),
		DistanceCm: dev.Distance(),
	})
	rec.cancel = dev.Scheduler.Every(period, func(at time.Duration) {
		if rec.done {
			return
		}
		rec.trace.Samples = append(rec.trace.Samples, Sample{
			AtMs:       at.Milliseconds(),
			DistanceCm: dev.Distance(),
		})
	})
	dev.Host.Tap(func(e core.Event) {
		if rec.done {
			return
		}
		rec.trace.Events = append(rec.trace.Events, Event{
			AtMs:  e.HostTime.Milliseconds(),
			Kind:  e.Kind.String(),
			Index: e.Index,
		})
	})
	return rec, nil
}

// Stop ends the recording and returns the trace.
func (r *Recorder) Stop() *Trace {
	if !r.done {
		r.done = true
		if r.cancel != nil {
			r.cancel()
		}
		if r.metrics != nil {
			r.trace.Telemetry = r.metrics.Snapshot()
		}
	}
	return r.trace
}

// Replay schedules the trace's distance samples onto a device, relative to
// the device's current virtual time, then returns the time at which the
// replay completes. Run the device past that time to execute it.
func Replay(t *Trace, dev *core.Device) (time.Duration, error) {
	if dev == nil {
		return 0, errors.New("trace: device is required")
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	base := dev.Clock.Now()
	t0 := t.Samples[0].AtMs
	var end time.Duration
	for _, s := range t.Samples {
		at := base + time.Duration(s.AtMs-t0)*time.Millisecond
		cm := s.DistanceCm
		dev.Scheduler.At(at, func(time.Duration) { dev.SetDistance(cm) })
		end = at
	}
	return end, nil
}

// CountKind returns how many recorded events have the given kind.
func (t *Trace) CountKind(kind string) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// LatencyShift compares the named latency histogram between two recorded
// sessions — typically the same scenario on two firmware builds — and
// returns the p50 difference (b minus a) in the histogram's unit. It
// returns false when either trace lacks telemetry or the series.
func LatencyShift(a, b *Trace, name string) (float64, bool) {
	ha, okA := histogramOf(a, name)
	hb, okB := histogramOf(b, name)
	if !okA || !okB {
		return 0, false
	}
	return hb.P50 - ha.P50, true
}

// CounterShift compares a named counter between two recorded sessions and
// returns the difference (b minus a). Missing telemetry reports false; a
// missing counter reads as zero, so a counter new in build b still diffs.
func CounterShift(a, b *Trace, name string) (int64, bool) {
	if a.Telemetry == nil || b.Telemetry == nil {
		return 0, false
	}
	return int64(b.Telemetry.Counters[name]) - int64(a.Telemetry.Counters[name]), true
}

func histogramOf(t *Trace, name string) (telemetry.HistogramSnapshot, bool) {
	if t.Telemetry == nil {
		return telemetry.HistogramSnapshot{}, false
	}
	return t.Telemetry.Histogram(name)
}
