// Package context implements the paper's planned extension of Section 4.3:
// "We plan to include the acceleration sensor in the final version of the
// DistScroll to get information about the orientation of the device in 3D
// space and exploit this values for context determination."
//
// The detector classifies device posture and the holding hand from the
// two-axis ADXL311 signal, with debouncing so momentary motion does not
// flap the classification. Hand detection feeds the Section 6 ambition of
// a device "equally usable with the left or right hand": the firmware can
// swap the select/back button roles automatically.
package context

import (
	"fmt"
	"math"

	"github.com/hcilab/distscroll/internal/adxl311"
)

// Posture is the coarse device attitude.
type Posture int

// Posture classes.
const (
	// PostureUnknown is reported before enough samples arrived.
	PostureUnknown Posture = iota
	// PostureFlat: the device lies on a table (both axes near 0 g).
	PostureFlat
	// PostureHeld: the typical reading posture, pitched towards the face.
	PostureHeld
	// PostureTilted: strongly rolled sideways.
	PostureTilted
)

// String returns the posture name.
func (p Posture) String() string {
	switch p {
	case PostureFlat:
		return "flat"
	case PostureHeld:
		return "held"
	case PostureTilted:
		return "tilted"
	default:
		return "unknown"
	}
}

// Hand is the detected holding hand.
type Hand int

// Hand classes.
const (
	HandUnknown Hand = iota
	HandRight
	HandLeft
)

// String returns the hand name.
func (h Hand) String() string {
	switch h {
	case HandRight:
		return "right"
	case HandLeft:
		return "left"
	default:
		return "unknown"
	}
}

// Context is one classified device state.
type Context struct {
	Posture Posture
	Hand    Hand
	// Moving reports significant dynamic acceleration (gesture/transport).
	Moving bool
}

// Encode packs the context into one telemetry byte.
func (c Context) Encode() byte {
	b := byte(c.Posture)&0x3 | byte(c.Hand)&0x3<<2
	if c.Moving {
		b |= 1 << 4
	}
	return b
}

// DecodeContext unpacks a telemetry byte.
func DecodeContext(b byte) Context {
	return Context{
		Posture: Posture(b & 0x3),
		Hand:    Hand(b >> 2 & 0x3),
		Moving:  b&(1<<4) != 0,
	}
}

// String formats the context for the debug display.
func (c Context) String() string {
	mv := ""
	if c.Moving {
		mv = " moving"
	}
	return fmt.Sprintf("%s/%s%s", c.Posture, c.Hand, mv)
}

// Config tunes the detector thresholds.
type Config struct {
	// FlatMaxG is the per-axis magnitude below which the device is flat.
	FlatMaxG float64
	// TiltMinG is the roll magnitude above which the device is tilted.
	TiltMinG float64
	// HandMinG is the roll magnitude needed to call the holding hand: a
	// right hand rolls the device slightly to the left (negative Y).
	HandMinG float64
	// MoveVarG2 is the dynamic variance threshold for Moving.
	MoveVarG2 float64
	// Settle is how many consistent classifications flip the output.
	Settle int
}

// DefaultConfig returns thresholds tuned for the simulated ADXL311.
func DefaultConfig() Config {
	return Config{
		FlatMaxG:  0.12,
		TiltMinG:  0.55,
		HandMinG:  0.10,
		MoveVarG2: 0.01,
		Settle:    3,
	}
}

// Detector turns accelerometer samples into a debounced Context.
type Detector struct {
	cfg Config

	current   Context
	candidate Context
	streak    int

	// running variance of the magnitude, for Moving.
	histMag [8]float64
	histN   int
	histIdx int
	samples uint64
}

// NewDetector returns a detector with the given thresholds; a zero Settle
// falls back to the default.
func NewDetector(cfg Config) *Detector {
	if cfg.Settle <= 0 {
		cfg.Settle = DefaultConfig().Settle
	}
	return &Detector{cfg: cfg}
}

// Current returns the debounced context.
func (d *Detector) Current() Context { return d.current }

// Samples reports how many samples were consumed.
func (d *Detector) Samples() uint64 { return d.samples }

// FeedVoltages consumes one pair of ADXL311 output voltages.
func (d *Detector) FeedVoltages(vx, vy float64) Context {
	o := adxl311.TiltFromVoltages(vx, vy)
	gx := math.Sin(o.Pitch)
	gy := math.Sin(o.Roll)
	return d.FeedG(gx, gy)
}

// FeedG consumes one pair of axis accelerations in g.
func (d *Detector) FeedG(gx, gy float64) Context {
	d.samples++

	mag := math.Hypot(gx, gy)
	d.histMag[d.histIdx] = mag
	d.histIdx = (d.histIdx + 1) % len(d.histMag)
	if d.histN < len(d.histMag) {
		d.histN++
	}

	next := Context{Posture: d.classifyPosture(gx, gy), Hand: d.classifyHand(gy)}
	next.Moving = d.movementVariance() > d.cfg.MoveVarG2

	// Debounce posture+hand; Moving is immediate (it is already a
	// windowed statistic).
	if next.Posture == d.candidate.Posture && next.Hand == d.candidate.Hand {
		d.streak++
	} else {
		d.candidate = next
		d.streak = 1
	}
	if d.streak >= d.cfg.Settle {
		d.current.Posture = d.candidate.Posture
		d.current.Hand = d.candidate.Hand
	}
	d.current.Moving = next.Moving
	return d.current
}

func (d *Detector) classifyPosture(gx, gy float64) Posture {
	switch {
	case math.Abs(gx) < d.cfg.FlatMaxG && math.Abs(gy) < d.cfg.FlatMaxG:
		return PostureFlat
	case math.Abs(gy) > d.cfg.TiltMinG:
		return PostureTilted
	default:
		return PostureHeld
	}
}

func (d *Detector) classifyHand(gy float64) Hand {
	switch {
	case gy < -d.cfg.HandMinG:
		return HandRight // right-hand grip rolls the top edge left
	case gy > d.cfg.HandMinG:
		return HandLeft
	default:
		return HandUnknown
	}
}

func (d *Detector) movementVariance() float64 {
	if d.histN < 2 {
		return 0
	}
	mean := 0.0
	for i := 0; i < d.histN; i++ {
		mean += d.histMag[i]
	}
	mean /= float64(d.histN)
	v := 0.0
	for i := 0; i < d.histN; i++ {
		dm := d.histMag[i] - mean
		v += dm * dm
	}
	return v / float64(d.histN-1)
}
