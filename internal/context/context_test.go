package context

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/adxl311"
	"github.com/hcilab/distscroll/internal/sim"
)

func feedN(d *Detector, gx, gy float64, n int) Context {
	var c Context
	for i := 0; i < n; i++ {
		c = d.FeedG(gx, gy)
	}
	return c
}

func TestUnknownBeforeSettle(t *testing.T) {
	d := NewDetector(DefaultConfig())
	c := d.FeedG(0, 0)
	if c.Posture != PostureUnknown {
		t.Fatalf("posture after 1 sample: %v", c.Posture)
	}
}

func TestFlatDetection(t *testing.T) {
	d := NewDetector(DefaultConfig())
	c := feedN(d, 0.02, -0.03, 5)
	if c.Posture != PostureFlat {
		t.Fatalf("posture = %v", c.Posture)
	}
	if c.Hand != HandUnknown {
		t.Fatalf("hand on a table = %v", c.Hand)
	}
}

func TestHeldRightHand(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// Reading posture: pitched up ~35°, rolled slightly left (right grip).
	gx := math.Sin(35 * math.Pi / 180)
	gy := -0.2
	c := feedN(d, gx, gy, 5)
	if c.Posture != PostureHeld {
		t.Fatalf("posture = %v", c.Posture)
	}
	if c.Hand != HandRight {
		t.Fatalf("hand = %v", c.Hand)
	}
}

func TestHeldLeftHand(t *testing.T) {
	d := NewDetector(DefaultConfig())
	c := feedN(d, 0.5, 0.2, 5)
	if c.Hand != HandLeft {
		t.Fatalf("hand = %v", c.Hand)
	}
}

func TestTiltedPosture(t *testing.T) {
	d := NewDetector(DefaultConfig())
	c := feedN(d, 0.1, 0.8, 5)
	if c.Posture != PostureTilted {
		t.Fatalf("posture = %v", c.Posture)
	}
}

func TestDebounceSuppressesBlips(t *testing.T) {
	d := NewDetector(DefaultConfig())
	feedN(d, 0.5, -0.2, 5) // settled: held/right
	// Two blip samples of a left roll: must not flip.
	c := feedN(d, 0.5, 0.3, 2)
	if c.Hand != HandRight {
		t.Fatalf("hand flipped on a blip: %v", c.Hand)
	}
	// Sustained change does flip.
	c = feedN(d, 0.5, 0.3, 3)
	if c.Hand != HandLeft {
		t.Fatalf("hand did not follow sustained change: %v", c.Hand)
	}
}

func TestMovingDetection(t *testing.T) {
	d := NewDetector(DefaultConfig())
	c := feedN(d, 0.4, -0.2, 10)
	if c.Moving {
		t.Fatal("static hold reported moving")
	}
	// Oscillating dynamic acceleration.
	rng := sim.NewRand(1)
	for i := 0; i < 10; i++ {
		c = d.FeedG(0.4+rng.Uniform(-0.4, 0.4), -0.2+rng.Uniform(-0.4, 0.4))
	}
	if !c.Moving {
		t.Fatal("oscillation not reported as moving")
	}
	// Settling again clears it.
	c = feedN(d, 0.4, -0.2, 10)
	if c.Moving {
		t.Fatal("moving flag stuck")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(p, h uint8, mv bool) bool {
		c := Context{
			Posture: Posture(p % 4),
			Hand:    Hand(h % 3),
			Moving:  mv,
		}
		return DecodeContext(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeedVoltagesPath(t *testing.T) {
	a := adxl311.New(nil)
	a.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: -0.25})
	d := NewDetector(DefaultConfig())
	var c Context
	for i := 0; i < 5; i++ {
		c = d.FeedVoltages(a.VoltageX(), a.VoltageY())
	}
	if c.Posture != PostureHeld || c.Hand != HandRight {
		t.Fatalf("context = %+v", c)
	}
	if d.Samples() != 5 {
		t.Fatalf("samples = %d", d.Samples())
	}
}

func TestStrings(t *testing.T) {
	for _, p := range []Posture{PostureUnknown, PostureFlat, PostureHeld, PostureTilted} {
		if p.String() == "" {
			t.Fatalf("posture %d has empty name", p)
		}
	}
	for _, h := range []Hand{HandUnknown, HandRight, HandLeft} {
		if h.String() == "" {
			t.Fatalf("hand %d has empty name", h)
		}
	}
	c := Context{Posture: PostureHeld, Hand: HandRight, Moving: true}
	if c.String() == "" {
		t.Fatal("empty context string")
	}
}
