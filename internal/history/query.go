package history

import (
	"encoding/json"
	"errors"
	"io"
	"sort"
	"strings"
)

var errNoRegistry = errors.New("history: Config.Registry is required")

// Query selects a slice of the retained history. The zero Query returns
// everything retained.
type Query struct {
	// LastK limits the response to the most recent K windows
	// (<= 0 returns every retained window).
	LastK int
	// Series, when non-empty, selects exact series names.
	Series []string
	// Prefixes, when non-empty, selects every series whose name starts
	// with one of the prefixes (e.g. "hub_", "net_frames_total{").
	// Series and Prefixes are OR'd together.
	Prefixes []string
}

// SeriesData is one series' retained windows, oldest first. Counters
// carry windowed rates in Values, gauges raw samples in Values,
// histograms the per-window digest columns.
type SeriesData struct {
	Kind   string    `json:"kind"`
	Values []float64 `json:"values,omitempty"`
	Count  []float64 `json:"count,omitempty"`
	P50    []float64 `json:"p50,omitempty"`
	P99    []float64 `json:"p99,omitempty"`
	Max    []float64 `json:"max,omitempty"`
}

// Result is a history query response: parallel window timestamps and the
// selected series, oldest window first.
type Result struct {
	// IntervalSeconds is the configured sampling cadence.
	IntervalSeconds float64 `json:"intervalSeconds"`
	// Capacity is the ring size (max retained windows per series).
	Capacity int `json:"capacity"`
	// Count is how many windows have ever been captured.
	Count uint64 `json:"count"`
	// Start is the global index of the first returned window; the
	// returned windows are [Start, Start+len(Times)).
	Start uint64 `json:"start"`
	// Times stamps each returned window (unix milliseconds).
	Times []int64 `json:"times"`
	// Series maps name to retained data over the same windows.
	Series map[string]SeriesData `json:"series"`
	// Breaches are the latched SLO breach markers; Window is a global
	// window index comparable to Start.
	Breaches []BreachMark `json:"breaches,omitempty"`
}

func (q Query) matches(name string) bool {
	if len(q.Series) == 0 && len(q.Prefixes) == 0 {
		return true
	}
	for _, s := range q.Series {
		if name == s {
			return true
		}
	}
	for _, p := range q.Prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Query snapshots the selected slice of history. Safe against concurrent
// sampling; returns an empty Result (never nil) when nothing matches.
func (s *Store) Query(q Query) *Result {
	if s == nil {
		return &Result{Series: map[string]SeriesData{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	lo, hi := s.rangeLocked(q.LastK)
	res := &Result{
		IntervalSeconds: s.interval.Seconds(),
		Capacity:        s.windows,
		Count:           s.count,
		Start:           lo,
		Times:           s.timesLocked(lo, hi),
		Series:          make(map[string]SeriesData, len(s.series)),
	}
	for name, sr := range s.series {
		if !q.matches(name) {
			continue
		}
		res.Series[name] = s.extractLocked(sr, lo, hi)
	}
	res.Breaches = append(res.Breaches, s.marks...)
	return res
}

// WriteJSON writes a Query response as indented JSON.
func (s *Store) WriteJSON(w io.Writer, q Query) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Query(q))
}

// SeriesNames reports the retained series names, sorted.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// rangeLocked resolves a lastK request into global window indices
// [lo, hi), clamped to what the ring still retains.
func (s *Store) rangeLocked(lastK int) (lo, hi uint64) {
	hi = s.count
	lo = 0
	if hi > uint64(s.windows) {
		lo = hi - uint64(s.windows)
	}
	if lastK > 0 && hi-lo > uint64(lastK) {
		lo = hi - uint64(lastK)
	}
	return lo, hi
}

func (s *Store) timesLocked(lo, hi uint64) []int64 {
	out := make([]int64, 0, hi-lo)
	for g := lo; g < hi; g++ {
		out = append(out, s.times[g%uint64(s.windows)])
	}
	return out
}

// extractLocked copies one series' windows [lo, hi) out of its ring.
func (s *Store) extractLocked(sr *series, lo, hi uint64) SeriesData {
	d := SeriesData{Kind: sr.kind.String()}
	n := int(hi - lo)
	switch sr.kind {
	case KindCounter, KindGauge:
		d.Values = make([]float64, 0, n)
		for g := lo; g < hi; g++ {
			d.Values = append(d.Values, sr.vals[g%uint64(s.windows)])
		}
	case KindHistogram:
		d.Count = make([]float64, 0, n)
		d.P50 = make([]float64, 0, n)
		d.P99 = make([]float64, 0, n)
		d.Max = make([]float64, 0, n)
		for g := lo; g < hi; g++ {
			dg := sr.digs[g%uint64(s.windows)]
			d.Count = append(d.Count, dg.Count)
			d.P50 = append(d.P50, dg.P50)
			d.P99 = append(d.P99, dg.P99)
			d.Max = append(d.Max, dg.Max)
		}
	}
	return d
}
