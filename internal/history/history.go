// Package history is a bounded in-process time-series store over the
// telemetry registry: it samples a Registry snapshot on a fixed cadence
// and retains the last N windows per series in preallocated ring
// buffers. Counters are stored as windowed rates (per second), gauges as
// raw samples, histograms as per-window delta digests (count/p50/p99/max
// computed from the bucket deltas between consecutive snapshots).
//
// The package is dependency-free and built for the hot ops plane:
// appending a window is O(series) with zero steady-state allocations —
// every ring, scratch histogram, and bucket slice is allocated when a
// series is first seen and reused forever after. The clock is injectable
// so tests and the deterministic scale path stay seed-stable.
package history

import (
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// Kind classifies a retained series.
type Kind uint8

const (
	// KindCounter series retain the windowed rate (delta per second).
	KindCounter Kind = iota
	// KindGauge series retain the raw sampled value.
	KindGauge
	// KindHistogram series retain a per-window delta Digest.
	KindHistogram
)

// String names the kind for JSON and the dashboard.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Digest is one window's histogram summary: the number of observations
// that landed in the window and the quantiles of the window's delta
// distribution. Max is the q=1 quantile (clamped to the top bucket
// bound, like every bucketed quantile).
type Digest struct {
	Count float64
	P50   float64
	P99   float64
	Max   float64
}

// Defaults for Config zero values.
const (
	DefaultWindows  = 120
	DefaultInterval = time.Second
)

// Config parameterises a Store.
type Config struct {
	// Registry is the telemetry registry to sample. Required.
	Registry *telemetry.Registry
	// Windows is how many sample windows each series retains
	// (<= 0 takes DefaultWindows).
	Windows int
	// Interval is the sampling cadence (<= 0 takes DefaultInterval).
	Interval time.Duration
	// Now injects the clock; nil takes time.Now. Every window is
	// stamped with Now() and rates divide by the measured gap between
	// consecutive samples, so a test clock makes the store fully
	// deterministic.
	Now func() time.Time
}

// series is one retained metric: a ring of scalar values (counter rates
// or gauge samples) or a ring of histogram digests, plus the previous
// cumulative snapshot needed to form the next window's delta.
type series struct {
	kind Kind

	// vals is the scalar ring (KindCounter, KindGauge).
	vals []float64
	// digs is the digest ring (KindHistogram).
	digs []Digest

	// prevCount is the last cumulative counter value (KindCounter).
	prevCount uint64
	// lastVal repeats a gauge's last seen value when the gauge
	// disappears from a snapshot (KindGauge).
	lastVal float64
	// prevHist is the last cumulative histogram snapshot and delta is
	// the reusable scratch for the window's bucket deltas
	// (KindHistogram). Both reuse their slices across windows.
	prevHist telemetry.HistogramSnapshot
	delta    telemetry.HistogramSnapshot
}

// Store retains bounded telemetry history. All methods are safe for
// concurrent use; the zero Store is not usable — build one with New or
// Start.
type Store struct {
	reg      *telemetry.Registry
	windows  int
	interval time.Duration
	now      func() time.Time

	mu     sync.Mutex
	series map[string]*series
	// times is the shared window-timestamp ring (unix milliseconds).
	times []int64
	// count is the total number of windows ever captured; the ring
	// index of window g is g % windows, valid while g >= count-windows.
	count  uint64
	lastAt time.Time

	// marks are latched breach markers (bounded at maxMarks).
	marks []BreachMark
	// pending are breach forensics waiting for their post-breach tail.
	pending []*pendingForensics

	stop     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// New builds a passive store: nothing samples it until the caller drives
// Sample/Observe (tests, deterministic runs) or it was built via Start.
func New(cfg Config) (*Store, error) {
	if cfg.Registry == nil {
		return nil, errNoRegistry
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindows
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		reg:      cfg.Registry,
		windows:  cfg.Windows,
		interval: cfg.Interval,
		now:      cfg.Now,
		series:   make(map[string]*series),
		times:    make([]int64, cfg.Windows),
		stop:     make(chan struct{}),
	}, nil
}

// Start builds a store and launches its sampler goroutine, which
// captures one window every Interval until Stop.
func Start(cfg Config) (*Store, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.loopDone = make(chan struct{})
	go s.loop()
	return s, nil
}

func (s *Store) loop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Stop halts the sampler (if one is running), waits for it to exit, and
// flushes any breach forensics still waiting for their post-breach tail
// so no onReady callback is lost on shutdown. Safe to call more than
// once and on a nil store.
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	if s.loopDone != nil {
		<-s.loopDone
	}
	s.flushPending()
}

// Windows reports the ring capacity.
func (s *Store) Windows() int {
	if s == nil {
		return 0
	}
	return s.windows
}

// Interval reports the configured sampling cadence.
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Captured reports how many windows have ever been sampled.
func (s *Store) Captured() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sample captures one window from the registry now. The snapshot itself
// allocates (it is the registry's export path); the Observe append does
// not.
func (s *Store) Sample() {
	if s == nil {
		return
	}
	s.Observe(s.reg.Snapshot())
}

// Observe appends one window from an already-taken registry snapshot.
// Steady state performs zero allocations: every series ring and scratch
// buffer already exists, and only a brand-new metric name allocates (its
// one-time series creation). Counter windows record delta/dt against the
// previous sample (a counter that went backwards — registry swap —
// rebaselines at rate 0); gauges record the raw sample, repeating the
// last value if the gauge vanished; histograms record the delta digest
// between consecutive cumulative snapshots.
func (s *Store) Observe(snap *telemetry.Snapshot) {
	if s == nil || snap == nil {
		return
	}
	now := s.now()

	s.mu.Lock()
	dt := s.interval.Seconds()
	if s.count > 0 {
		if d := now.Sub(s.lastAt).Seconds(); d > 0 {
			dt = d
		}
	}
	s.lastAt = now
	idx := int(s.count % uint64(s.windows))
	s.times[idx] = now.UnixMilli()

	// Existing series first: every retained series gets a value this
	// window even if it vanished from the snapshot.
	for name, sr := range s.series {
		switch sr.kind {
		case KindCounter:
			rate := 0.0
			if cur, ok := snap.Counters[name]; ok {
				if cur >= sr.prevCount {
					rate = float64(cur-sr.prevCount) / dt
				}
				sr.prevCount = cur
			}
			sr.vals[idx] = rate
		case KindGauge:
			if v, ok := snap.Gauges[name]; ok {
				sr.lastVal = v
			}
			sr.vals[idx] = sr.lastVal
		case KindHistogram:
			var d Digest
			if h, ok := snap.Histograms[name]; ok {
				d = sr.windowDigest(h)
			}
			sr.digs[idx] = d
		}
	}

	// Discover series that appeared this window. Creation seeds the
	// previous cumulative state from the current sample, so the first
	// window records rate 0 / an empty digest rather than a spurious
	// spike from the whole pre-history accumulation.
	for name, v := range snap.Counters {
		if _, ok := s.series[name]; !ok {
			sr := &series{kind: KindCounter, vals: make([]float64, s.windows), prevCount: v}
			s.series[name] = sr
		}
	}
	for name, v := range snap.Gauges {
		if _, ok := s.series[name]; !ok {
			sr := &series{kind: KindGauge, vals: make([]float64, s.windows), lastVal: v}
			sr.vals[idx] = v
			s.series[name] = sr
		}
	}
	for name, h := range snap.Histograms {
		if _, ok := s.series[name]; !ok {
			sr := &series{kind: KindHistogram, digs: make([]Digest, s.windows)}
			sr.rebaseline(h)
			s.series[name] = sr
		}
	}

	s.count++
	ready := s.advancePending()
	s.mu.Unlock()

	for _, p := range ready {
		p.fire()
	}
}

// windowDigest forms the digest of the observations between the previous
// cumulative snapshot and cur, then rebaselines. Shape changes and
// counter regressions (registry swaps) record an empty window. Reuses
// the series' scratch slices: zero allocations once warmed.
func (sr *series) windowDigest(cur telemetry.HistogramSnapshot) Digest {
	prev := &sr.prevHist
	if len(prev.Counts) != len(cur.Counts) || prev.Count > cur.Count {
		sr.rebaseline(cur)
		return Digest{}
	}
	d := &sr.delta
	d.Bounds = append(d.Bounds[:0], cur.Bounds...)
	d.Counts = d.Counts[:0]
	for i := range cur.Counts {
		if cur.Counts[i] < prev.Counts[i] {
			sr.rebaseline(cur)
			return Digest{}
		}
		d.Counts = append(d.Counts, cur.Counts[i]-prev.Counts[i])
	}
	d.Count = cur.Count - prev.Count
	d.Sum = cur.Sum - prev.Sum
	sr.rebaseline(cur)
	if d.Count == 0 {
		return Digest{}
	}
	return Digest{
		Count: float64(d.Count),
		P50:   d.Quantile(0.5),
		P99:   d.Quantile(0.99),
		Max:   d.Quantile(1),
	}
}

// rebaseline copies cur into the series' previous cumulative snapshot,
// reusing the existing slices.
func (sr *series) rebaseline(cur telemetry.HistogramSnapshot) {
	sr.prevHist.Bounds = append(sr.prevHist.Bounds[:0], cur.Bounds...)
	sr.prevHist.Counts = append(sr.prevHist.Counts[:0], cur.Counts...)
	sr.prevHist.Count = cur.Count
	sr.prevHist.Sum = cur.Sum
}
