package history

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// tickClock advances one interval per call, making every window's dt
// exactly the configured cadence.
func tickClock(step time.Duration) func() time.Time {
	t := time.UnixMilli(1_700_000_000_000)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func newTestStore(t *testing.T, windows int) *Store {
	t.Helper()
	s, err := New(Config{
		Registry: telemetry.New(),
		Windows:  windows,
		Interval: time.Second,
		Now:      tickClock(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func snap() *telemetry.Snapshot {
	return &telemetry.Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
	}
}

func TestCounterWindowedRates(t *testing.T) {
	s := newTestStore(t, 8)
	for i, total := range []uint64{100, 150, 150, 400} {
		sn := snap()
		sn.Counters["hub_events_total"] = total
		s.Observe(sn)
		if got := s.Captured(); got != uint64(i+1) {
			t.Fatalf("captured %d after %d windows", got, i+1)
		}
	}
	res := s.Query(Query{})
	sd, ok := res.Series["hub_events_total"]
	if !ok || sd.Kind != "counter" {
		t.Fatalf("missing counter series: %+v", res.Series)
	}
	// First sight records rate 0 (no spike from pre-history), then the
	// per-second deltas.
	want := []float64{0, 50, 0, 250}
	if len(sd.Values) != len(want) {
		t.Fatalf("got %d windows, want %d", len(sd.Values), len(want))
	}
	for i, w := range want {
		if sd.Values[i] != w {
			t.Fatalf("window %d rate %g, want %g (all %v)", i, sd.Values[i], w, sd.Values)
		}
	}
}

func TestCounterRegressionRebaselines(t *testing.T) {
	s := newTestStore(t, 8)
	for _, total := range []uint64{100, 150, 30, 40} {
		sn := snap()
		sn.Counters["c"] = total
		s.Observe(sn)
	}
	vals := s.Query(Query{}).Series["c"].Values
	// The backwards step (registry swap) records 0, then deltas resume.
	want := []float64{0, 50, 0, 10}
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("window %d rate %g, want %g (all %v)", i, vals[i], w, vals)
		}
	}
}

func TestGaugeRepeatsLastValue(t *testing.T) {
	s := newTestStore(t, 8)
	sn := snap()
	sn.Gauges["sim_devices"] = 7
	s.Observe(sn)
	s.Observe(snap()) // gauge vanished: repeat last value
	sn = snap()
	sn.Gauges["sim_devices"] = 9
	s.Observe(sn)
	vals := s.Query(Query{}).Series["sim_devices"].Values
	want := []float64{7, 7, 9}
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("window %d gauge %g, want %g (all %v)", i, vals[i], w, vals)
		}
	}
}

func TestHistogramDeltaDigests(t *testing.T) {
	reg := telemetry.New()
	s, err := New(Config{Registry: reg, Windows: 8, Interval: time.Second, Now: tickClock(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("hub_e2e_latency_ms", []float64{1, 5, 20, 100})
	h.Observe(1)
	s.Sample() // first sight: empty digest, baseline latched
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	s.Sample()
	s.Sample() // no new observations: empty digest

	sd := s.Query(Query{}).Series["hub_e2e_latency_ms"]
	if sd.Kind != "histogram" {
		t.Fatalf("kind %q", sd.Kind)
	}
	if sd.Count[0] != 0 {
		t.Fatalf("first-sight digest count %g, want 0", sd.Count[0])
	}
	if sd.Count[1] != 100 {
		t.Fatalf("window 1 digest count %g, want 100", sd.Count[1])
	}
	// All 100 observations were 10ms: every quantile of the window's
	// delta lands in the bucket containing 10.
	if sd.P50[1] <= 0 || sd.P99[1] < sd.P50[1] || sd.Max[1] < sd.P99[1] {
		t.Fatalf("digest quantiles not ordered: p50=%g p99=%g max=%g", sd.P50[1], sd.P99[1], sd.Max[1])
	}
	if sd.Count[2] != 0 || sd.P99[2] != 0 {
		t.Fatalf("idle window digest not empty: count=%g p99=%g", sd.Count[2], sd.P99[2])
	}
}

func TestRingWrapKeepsLastWindows(t *testing.T) {
	s := newTestStore(t, 4)
	for i := 1; i <= 10; i++ {
		sn := snap()
		sn.Gauges["g"] = float64(i)
		s.Observe(sn)
	}
	res := s.Query(Query{})
	if res.Count != 10 || res.Start != 6 || res.Capacity != 4 {
		t.Fatalf("count=%d start=%d capacity=%d", res.Count, res.Start, res.Capacity)
	}
	vals := res.Series["g"].Values
	want := []float64{7, 8, 9, 10}
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("window %d value %g, want %g (all %v)", i, vals[i], w, vals)
		}
	}
	if len(res.Times) != 4 {
		t.Fatalf("times %v", res.Times)
	}
	for i := 1; i < len(res.Times); i++ {
		if res.Times[i] != res.Times[i-1]+1000 {
			t.Fatalf("times not 1s apart: %v", res.Times)
		}
	}
}

func TestQuerySelection(t *testing.T) {
	s := newTestStore(t, 8)
	for i := 0; i < 5; i++ {
		sn := snap()
		sn.Counters["hub_events_total"] = uint64(i * 10)
		sn.Counters["net_frames_total"] = uint64(i * 20)
		sn.Gauges["sim_devices"] = 3
		s.Observe(sn)
	}

	res := s.Query(Query{LastK: 2})
	if len(res.Times) != 2 || res.Start != 3 {
		t.Fatalf("lastK: start=%d times=%v", res.Start, res.Times)
	}
	if len(res.Series) != 3 {
		t.Fatalf("unfiltered query returned %d series", len(res.Series))
	}

	res = s.Query(Query{Series: []string{"sim_devices"}})
	if len(res.Series) != 1 || res.Series["sim_devices"].Kind != "gauge" {
		t.Fatalf("series filter: %+v", res.Series)
	}

	res = s.Query(Query{Prefixes: []string{"hub_", "net_"}})
	if len(res.Series) != 2 {
		t.Fatalf("prefix filter: %+v", res.Series)
	}

	names := s.SeriesNames()
	if len(names) != 3 || names[0] != "hub_events_total" {
		t.Fatalf("series names %v", names)
	}
}

func TestMarkBreachForensics(t *testing.T) {
	s := newTestStore(t, 32)
	for i := 1; i <= 5; i++ {
		sn := snap()
		sn.Counters["hub_frames_decoded_total"] = uint64(i * 100)
		sn.Gauges["net_ring_depth"] = float64(i)
		s.Observe(sn)
	}

	var got *Forensics
	mark := s.MarkBreach(BreachMark{
		Rule: "min-rate", Metric: "hub_frames_decoded_total", Value: 0, Limit: 50, AtMillis: 123,
	}, 3, func(f *Forensics) { got = f })
	if mark.Window != 5 {
		t.Fatalf("mark window %d, want 5", mark.Window)
	}

	for i := 6; i <= 7; i++ {
		sn := snap()
		sn.Counters["hub_frames_decoded_total"] = uint64(i * 100)
		s.Observe(sn)
		if got != nil {
			t.Fatalf("forensics fired after %d post windows, want 3", i-5)
		}
	}
	sn := snap()
	sn.Counters["hub_frames_decoded_total"] = 800
	s.Observe(sn)
	if got == nil {
		t.Fatal("forensics never fired")
	}
	if got.Mark.Window != 5 || got.Start != 0 || len(got.Times) != 8 {
		t.Fatalf("capture shape: mark=%d start=%d windows=%d", got.Mark.Window, got.Start, len(got.Times))
	}
	if _, ok := got.Series["hub_frames_decoded_total"]; !ok {
		t.Fatalf("capture missing breach metric: %v", got.Series)
	}

	var tbl strings.Builder
	got.WriteTable(&tbl)
	out := tbl.String()
	for _, want := range []string{"min-rate", "hub_frames_decoded_total", "<- breach"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	// The latched marker shows up on the query timeline too.
	res := s.Query(Query{})
	if len(res.Breaches) != 1 || res.Breaches[0].Window != 5 || res.Breaches[0].AtMillis != 123 {
		t.Fatalf("query breaches: %+v", res.Breaches)
	}
}

func TestStopFlushesPendingForensics(t *testing.T) {
	s := newTestStore(t, 16)
	sn := snap()
	sn.Counters["c"] = 10
	s.Observe(sn)

	var got *Forensics
	s.MarkBreach(BreachMark{Rule: "stall", Metric: "c"}, 10, func(f *Forensics) { got = f })
	s.Stop() // run ends inside the tail: the capture fires with what exists
	if got == nil {
		t.Fatal("Stop did not flush the pending capture")
	}
	if len(got.Times) != 1 {
		t.Fatalf("flushed capture has %d windows, want 1", len(got.Times))
	}
	s.Stop() // idempotent
}

func TestSamplerLoop(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("hub_events_total").Add(1)
	s, err := Start(Config{Registry: reg, Windows: 64, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Captured() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never captured 3 windows")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	after := s.Captured()
	time.Sleep(10 * time.Millisecond)
	if got := s.Captured(); got != after {
		t.Fatalf("sampler still running after Stop: %d -> %d", after, got)
	}
	s.Stop() // idempotent
}

func TestNilAndErrorPaths(t *testing.T) {
	var s *Store
	s.Stop()
	s.Sample()
	s.Observe(nil)
	if s.Windows() != 0 || s.Interval() != 0 || s.Captured() != 0 {
		t.Fatal("nil accessors must be inert")
	}
	if res := s.Query(Query{}); res == nil || len(res.Series) != 0 {
		t.Fatalf("nil query: %+v", res)
	}
	if names := s.SeriesNames(); names != nil {
		t.Fatalf("nil series names: %v", names)
	}
	s.MarkBreach(BreachMark{}, 1, nil)

	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil registry")
	}
	if _, err := Start(Config{}); err == nil {
		t.Fatal("Start accepted a nil registry")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := New(Config{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Windows() != DefaultWindows || s.Interval() != DefaultInterval {
		t.Fatalf("defaults: windows=%d interval=%s", s.Windows(), s.Interval())
	}
}
