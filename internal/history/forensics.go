package history

import (
	"fmt"
	"io"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// Forensics bounds.
const (
	// maxMarks bounds the latched breach-marker list, mirroring the
	// watchdog's own breach latch.
	maxMarks = 64
	// maxPending bounds breach captures still waiting for their tail.
	maxPending = 32
	// DefaultPostWindows is the post-breach tail captured before a
	// breach's forensics fire, when the caller does not choose one.
	DefaultPostWindows = 8
	// forensicsPreWindows is how much history precedes the breach in
	// the capture (clamped to what the ring retains).
	forensicsPreWindows = 16
)

// BreachMark is a breach marker latched into the history timeline.
// Window is the global index of the first window sampled at or after the
// breach (comparable to Result.Start), so dashboards can place the
// marker on the sparklines.
type BreachMark struct {
	Rule     string  `json:"rule"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Limit    float64 `json:"limit"`
	Window   uint64  `json:"window"`
	AtMillis int64   `json:"atMillis"`
}

// Forensics is a breach's mini-postmortem: the windows leading up to the
// breach plus the configured post-breach tail, for the breach metric and
// the headline series.
type Forensics struct {
	Mark            BreachMark            `json:"mark"`
	IntervalSeconds float64               `json:"intervalSeconds"`
	// Start is the global index of the first captured window.
	Start uint64  `json:"start"`
	Times []int64 `json:"times"`
	// Series holds the captured windows per series, oldest first, same
	// shape as a Query response.
	Series map[string]SeriesData `json:"series"`
	// order fixes the table column order (breach metric first).
	order []string
}

type pendingForensics struct {
	mark      BreachMark
	remaining int
	onReady   func(*Forensics)
	forensics *Forensics
}

func (p *pendingForensics) fire() {
	if p.onReady != nil && p.forensics != nil {
		p.onReady(p.forensics)
	}
}

// headlineSeries are always included in a forensics capture when
// retained, alongside the breach metric itself.
var headlineSeries = []string{
	telemetry.MetricHubDecoded,
	telemetry.MetricHubEvents,
	telemetry.MetricRFSent,
	telemetry.MetricHubE2ELatency,
	telemetry.MetricNetFrames,
	telemetry.MetricNetRingDepth,
	telemetry.MetricSimTicksPerSec,
	telemetry.MetricSimVirtualSeconds,
}

// MarkBreach latches a breach marker on the timeline and schedules a
// forensics capture: after postWindows more windows have been sampled
// (<= 0 takes DefaultPostWindows), onReady fires once — outside the
// store lock — with the pre/post-breach capture. Stop flushes captures
// still waiting, so onReady also fires (with a shorter tail) when the
// run ends inside the tail. The returned mark carries the assigned
// Window index. Nil-safe; a nil onReady just latches the marker.
func (s *Store) MarkBreach(mark BreachMark, postWindows int, onReady func(*Forensics)) BreachMark {
	if s == nil {
		return mark
	}
	if postWindows <= 0 {
		postWindows = DefaultPostWindows
	}
	if most := s.windows - 1; postWindows > most {
		postWindows = most
	}
	s.mu.Lock()
	mark.Window = s.count
	if len(s.marks) < maxMarks {
		s.marks = append(s.marks, mark)
	}
	if onReady != nil && len(s.pending) < maxPending {
		s.pending = append(s.pending, &pendingForensics{
			mark:      mark,
			remaining: postWindows,
			onReady:   onReady,
		})
	}
	s.mu.Unlock()
	return mark
}

// advancePending decrements every pending capture's tail countdown and
// returns the ones whose tail completed this window, with their
// forensics built. Caller holds s.mu.
func (s *Store) advancePending() []*pendingForensics {
	if len(s.pending) == 0 {
		return nil
	}
	var ready []*pendingForensics
	kept := s.pending[:0]
	for _, p := range s.pending {
		p.remaining--
		if p.remaining <= 0 {
			p.forensics = s.buildForensicsLocked(p.mark)
			ready = append(ready, p)
			continue
		}
		kept = append(kept, p)
	}
	s.pending = kept
	return ready
}

// flushPending fires every capture still waiting for its tail (shutdown
// path): whatever history exists now is the capture.
func (s *Store) flushPending() {
	s.mu.Lock()
	drained := s.pending
	s.pending = nil
	for _, p := range drained {
		p.forensics = s.buildForensicsLocked(p.mark)
	}
	s.mu.Unlock()
	for _, p := range drained {
		p.fire()
	}
}

// buildForensicsLocked snapshots the windows around mark.Window: up to
// forensicsPreWindows before the breach and everything sampled since.
// Caller holds s.mu.
func (s *Store) buildForensicsLocked(mark BreachMark) *Forensics {
	lo, hi := s.rangeLocked(0)
	if pre := mark.Window; pre > forensicsPreWindows && pre-forensicsPreWindows > lo {
		lo = pre - forensicsPreWindows
	}
	if lo > hi {
		lo = hi
	}
	f := &Forensics{
		Mark:            mark,
		IntervalSeconds: s.interval.Seconds(),
		Start:           lo,
		Times:           s.timesLocked(lo, hi),
		Series:          make(map[string]SeriesData),
	}
	include := func(name string) {
		sr, ok := s.series[name]
		if !ok {
			return
		}
		if _, dup := f.Series[name]; dup {
			return
		}
		f.Series[name] = s.extractLocked(sr, lo, hi)
		f.order = append(f.order, name)
	}
	include(mark.Metric)
	for _, name := range headlineSeries {
		include(name)
	}
	return f
}

// WriteTable renders the capture as a plain-text pre/post table for the
// flight-recorder dump: one row per window, the breach boundary marked,
// counters as rates, gauges as values, histograms as p99.
func (f *Forensics) WriteTable(w io.Writer) {
	if f == nil {
		return
	}
	fmt.Fprintf(w, "  history (%.3gs windows): %s on %s, value %.4g limit %.4g\n",
		f.IntervalSeconds, f.Mark.Rule, f.Mark.Metric, f.Mark.Value, f.Mark.Limit)
	cols := f.order
	const maxCols = 5
	if len(cols) > maxCols {
		cols = cols[:maxCols]
	}
	fmt.Fprintf(w, "  %8s %12s", "window", "time")
	for _, name := range cols {
		fmt.Fprintf(w, " %22s", tableHeader(name, f.Series[name].Kind))
	}
	fmt.Fprintln(w)
	for i := range f.Times {
		g := f.Start + uint64(i)
		marker := " "
		if g == f.Mark.Window {
			marker = ">"
		}
		at := time.UnixMilli(f.Times[i])
		fmt.Fprintf(w, " %s%8d %12s", marker, g, at.Format("15:04:05.000"))
		for _, name := range cols {
			sd := f.Series[name]
			var v float64
			switch sd.Kind {
			case KindHistogram.String():
				if i < len(sd.P99) {
					v = sd.P99[i]
				}
			default:
				if i < len(sd.Values) {
					v = sd.Values[i]
				}
			}
			fmt.Fprintf(w, " %22.6g", v)
		}
		if g == f.Mark.Window {
			fmt.Fprint(w, "  <- breach")
		}
		fmt.Fprintln(w)
	}
}

// tableHeader compresses a series name into a table column label.
func tableHeader(name, kind string) string {
	if kind == KindHistogram.String() {
		name += " p99"
	}
	if len(name) > 22 {
		name = name[len(name)-22:]
	}
	return name
}
