package history

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// TestObserveZeroAlloc pins the sample path's steady-state contract:
// once every series exists, appending a window allocates nothing. The
// registry snapshot itself is the export path and is measured out.
func TestObserveZeroAlloc(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHubDecoded).Add(100)
	reg.Counter(telemetry.MetricFwCycles).Add(5000)
	reg.Gauge(telemetry.MetricSimDevices).Set(100000)
	reg.Gauge(telemetry.MetricNetRingDepth).Set(3)
	h := reg.Histogram(telemetry.MetricHubE2ELatency, []float64{1, 2, 5, 10, 50, 100})
	for i := 0; i < 64; i++ {
		h.Observe(float64(i % 7))
	}

	s, err := New(Config{Registry: reg, Windows: 32, Interval: time.Second, Now: tickClock(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: first sight creates each series, second window warms the
	// histogram delta scratch.
	snap := reg.Snapshot()
	s.Observe(snap)
	s.Observe(snap)

	if allocs := testing.AllocsPerRun(100, func() { s.Observe(snap) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per window; the sample path must be allocation-free", allocs)
	}

	// Still zero with live counter movement and a wrapped ring.
	if allocs := testing.AllocsPerRun(100, func() {
		reg.Counter(telemetry.MetricHubDecoded).Add(17)
		h.Observe(3)
		s.Observe(snap)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per window with live movement", allocs)
	}
}
