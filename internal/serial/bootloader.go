package serial

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Bootloader protocol bytes. The host (programmer) drives; the device
// bootloader answers each line with ACK or NAK.
const (
	Ack = 0x06
	Nak = 0x15
)

// Protocol errors.
var (
	// ErrNak is returned when the device rejects a record.
	ErrNak = errors.New("serial: device NAK")
	// ErrNoReply is returned when the device does not answer.
	ErrNoReply = errors.New("serial: no reply from bootloader")
	// ErrVerify is returned when read-back does not match the image.
	ErrVerify = errors.New("serial: flash verification failed")
)

// Bootloader is the device-resident programmer: it consumes Intel-HEX
// lines from its serial port, erases and programs flash pages, and
// acknowledges each record.
type Bootloader struct {
	port  *Port
	flash *Flash
	line  []byte

	records uint64
	naks    uint64
}

// NewBootloader attaches a bootloader to a port and a flash array.
func NewBootloader(port *Port, flash *Flash) (*Bootloader, error) {
	if port == nil || flash == nil {
		return nil, errors.New("serial: bootloader needs a port and flash")
	}
	return &Bootloader{port: port, flash: flash}, nil
}

// Records reports how many records were accepted.
func (bl *Bootloader) Records() uint64 { return bl.records }

// Naks reports how many records were rejected.
func (bl *Bootloader) Naks() uint64 { return bl.naks }

// Service drains the serial port, processing complete HEX lines. Call it
// from the polling loop; it never blocks.
func (bl *Bootloader) Service() error {
	buf := make([]byte, 256)
	for {
		n, err := bl.port.Read(buf)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		for _, b := range buf[:n] {
			if b == '\n' {
				bl.handleLine(string(bl.line))
				bl.line = bl.line[:0]
				continue
			}
			if b != '\r' {
				bl.line = append(bl.line, b)
			}
		}
	}
}

func (bl *Bootloader) handleLine(line string) {
	// Try the line on its own first: a bare EOF record decodes to an
	// empty image and is acknowledged as the end-of-download marker.
	img, err := DecodeHex(strings.NewReader(line + "\n"))
	if err != nil {
		// A data record needs a synthetic EOF to satisfy the decoder.
		img, err = DecodeHex(strings.NewReader(line + "\n:00000001FF\n"))
	}
	if err != nil {
		bl.nak()
		return
	}
	// A single record decodes into at most one span (EOF-only lines are
	// empty and just get acknowledged as keep-alives).
	for addr, data := range img.Spans {
		if err := bl.program(addr, data); err != nil {
			bl.nak()
			return
		}
	}
	bl.records++
	_, _ = bl.port.Write([]byte{Ack})
}

func (bl *Bootloader) nak() {
	bl.naks++
	_, _ = bl.port.Write([]byte{Nak})
}

// program writes a span via page-granular read-modify-write: the
// bootloader reads the page, merges the new bytes, erases and reprograms.
func (bl *Bootloader) program(addr int, data []byte) error {
	for len(data) > 0 {
		pageAddr := addr - addr%PageSize
		page := make([]byte, PageSize)
		if err := bl.flash.Read(pageAddr, page); err != nil {
			return err
		}
		off := addr - pageAddr
		n := copy(page[off:], data)
		if err := bl.flash.ErasePage(pageAddr); err != nil {
			return err
		}
		if err := bl.flash.ProgramPage(pageAddr, page); err != nil {
			return err
		}
		addr += n
		data = data[n:]
	}
	return nil
}

// Programmer is the host side: it streams an image line by line over the
// serial port, waiting for the bootloader's ACK after each record.
type Programmer struct {
	port *Port
	// Pump services the device side between host writes; in the real
	// setup this is the device's own poll loop running concurrently.
	Pump func() error
}

// NewProgrammer returns a host-side programmer on the given port end.
func NewProgrammer(port *Port, pump func() error) (*Programmer, error) {
	if port == nil {
		return nil, errors.New("serial: programmer needs a port")
	}
	return &Programmer{port: port, Pump: pump}, nil
}

// Download streams the image and returns the total records sent.
func (p *Programmer) Download(img *Image) (int, error) {
	var buf bytes.Buffer
	if err := img.EncodeHex(&buf); err != nil {
		return 0, err
	}
	records := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if _, err := p.port.Write([]byte(line + "\n")); err != nil {
			return records, err
		}
		if p.Pump != nil {
			if err := p.Pump(); err != nil {
				return records, err
			}
		}
		reply := make([]byte, 1)
		n, err := p.port.Read(reply)
		if err != nil {
			return records, err
		}
		if n == 0 {
			return records, ErrNoReply
		}
		if reply[0] != Ack {
			return records, fmt.Errorf("%w on record %d", ErrNak, records+1)
		}
		records++
	}
	return records, nil
}

// Verify reads back every span of the image from flash and compares.
func Verify(flash *Flash, img *Image) error {
	for addr, want := range img.Spans {
		got := make([]byte, len(want))
		if err := flash.Read(addr, got); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%w at %#x", ErrVerify, addr)
		}
	}
	return nil
}

// InstalledVersion reads the version string out of flash, or "" when the
// version block is erased.
func InstalledVersion(flash *Flash) (string, error) {
	buf := make([]byte, VersionLen)
	if err := flash.Read(VersionAddr, buf); err != nil {
		return "", err
	}
	v := strings.TrimRight(string(buf), "\x00\xff")
	return v, nil
}
