// Package serial models the serial and programmer connector of the
// Smart-Its base board (paper Section 4.1: the connectors were elongated
// with ribbon cable "to allow an opening of the device for battery changes
// and code downloads"). It provides a full-duplex byte port with baud
// accounting, the PIC's self-write flash memory, Intel-HEX image handling
// and the bootloader protocol used to download firmware into the device.
package serial

import (
	"errors"
	"fmt"
	"time"
)

// ErrClosed is returned on operations against a closed port.
var ErrClosed = errors.New("serial: port closed")

// Port is one end of a full-duplex serial connection. Writes appear in the
// peer's read buffer immediately; the on-wire time is accounted and
// retrievable so callers on a virtual clock can charge it.
type Port struct {
	name   string
	baud   int
	peer   *Port
	rx     []byte
	closed bool

	txBytes  uint64
	rxBytes  uint64
	wireTime time.Duration
}

// Pair returns the two ends of a connected serial line at the given baud
// rate (<= 0 selects 38400, the Smart-Its default).
func Pair(baud int) (*Port, *Port) {
	if baud <= 0 {
		baud = 38_400
	}
	a := &Port{name: "A", baud: baud}
	b := &Port{name: "B", baud: baud}
	a.peer, b.peer = b, a
	return a, b
}

// Baud returns the configured baud rate.
func (p *Port) Baud() int { return p.baud }

// Write queues data into the peer's read buffer and accounts the wire
// time (10 bits per byte, 8N1).
func (p *Port) Write(data []byte) (int, error) {
	if p.closed || p.peer.closed {
		return 0, ErrClosed
	}
	p.peer.rx = append(p.peer.rx, data...)
	p.txBytes += uint64(len(data))
	p.wireTime += time.Duration(float64(len(data)*10) / float64(p.baud) * float64(time.Second))
	return len(data), nil
}

// Read drains up to len(buf) buffered bytes. It returns n = 0 with a nil
// error when nothing is pending (the caller polls on virtual time).
func (p *Port) Read(buf []byte) (int, error) {
	if p.closed {
		return 0, ErrClosed
	}
	n := copy(buf, p.rx)
	p.rx = p.rx[n:]
	p.rxBytes += uint64(n)
	return n, nil
}

// Pending reports the number of buffered receive bytes.
func (p *Port) Pending() int { return len(p.rx) }

// Close shuts the port; both ends fail afterwards.
func (p *Port) Close() { p.closed = true }

// WireTime returns the cumulative transmit time of this end.
func (p *Port) WireTime() time.Duration { return p.wireTime }

// Stats returns transmit/receive byte counters.
func (p *Port) Stats() (tx, rx uint64) { return p.txBytes, p.rxBytes }

// String identifies the port end.
func (p *Port) String() string {
	return fmt.Sprintf("serial[%s %dbd]", p.name, p.baud)
}
