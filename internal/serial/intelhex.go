package serial

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Intel HEX record types used by the PIC toolchain.
const (
	recData byte = 0x00
	recEOF  byte = 0x01
)

// Intel HEX errors.
var (
	// ErrHexSyntax is returned for malformed records.
	ErrHexSyntax = errors.New("serial: intel hex syntax")
	// ErrHexChecksum is returned when a record checksum fails.
	ErrHexChecksum = errors.New("serial: intel hex checksum")
	// ErrNoEOF is returned when the EOF record is missing.
	ErrNoEOF = errors.New("serial: intel hex missing EOF record")
)

// Image is a firmware image: a sparse set of byte spans over the flash
// address space, plus a human-readable version string embedded at
// VersionAddr.
type Image struct {
	// Spans maps start address to contents; spans do not overlap.
	Spans map[int][]byte
}

// VersionAddr is where the build embeds the version string (NUL padded).
const (
	VersionAddr = 0x7F00
	VersionLen  = 32
)

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{Spans: make(map[int][]byte)}
}

// BuildImage assembles a firmware image from code bytes placed at the
// reset vector and a version string at VersionAddr.
func BuildImage(code []byte, version string) (*Image, error) {
	if len(code) > VersionAddr {
		return nil, fmt.Errorf("serial: code of %d bytes overlaps version block", len(code))
	}
	if len(version) >= VersionLen {
		return nil, fmt.Errorf("serial: version %q too long", version)
	}
	img := NewImage()
	img.Spans[0] = append([]byte(nil), code...)
	v := make([]byte, VersionLen)
	copy(v, version)
	img.Spans[VersionAddr] = v
	return img, nil
}

// Size returns the total byte count across spans.
func (img *Image) Size() int {
	n := 0
	for _, s := range img.Spans {
		n += len(s)
	}
	return n
}

// addresses returns span start addresses in ascending order.
func (img *Image) addresses() []int {
	addrs := make([]int, 0, len(img.Spans))
	for a := range img.Spans {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	return addrs
}

// EncodeHex writes the image as Intel HEX with 16-byte data records.
func (img *Image) EncodeHex(w io.Writer) error {
	for _, start := range img.addresses() {
		data := img.Spans[start]
		for off := 0; off < len(data); off += 16 {
			end := off + 16
			if end > len(data) {
				end = len(data)
			}
			if err := writeRecord(w, start+off, recData, data[off:end]); err != nil {
				return err
			}
		}
	}
	return writeRecord(w, 0, recEOF, nil)
}

func writeRecord(w io.Writer, addr int, typ byte, data []byte) error {
	sum := byte(len(data)) + byte(addr>>8) + byte(addr) + typ
	for _, b := range data {
		sum += b
	}
	checksum := byte(-int8(sum))
	_, err := fmt.Fprintf(w, ":%02X%04X%02X%s%02X\n",
		len(data), addr&0xFFFF, typ, strings.ToUpper(hex.EncodeToString(data)), checksum)
	return err
}

// DecodeHex parses Intel HEX into an image, verifying every checksum and
// requiring a terminating EOF record. Adjacent records merge into spans.
func DecodeHex(r io.Reader) (*Image, error) {
	img := NewImage()
	sc := bufio.NewScanner(r)
	sawEOF := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("%w: data after EOF at line %d", ErrHexSyntax, line)
		}
		if !strings.HasPrefix(text, ":") || len(text) < 11 || len(text)%2 == 0 {
			return nil, fmt.Errorf("%w: line %d", ErrHexSyntax, line)
		}
		raw, err := hex.DecodeString(text[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrHexSyntax, line, err)
		}
		count := int(raw[0])
		if len(raw) != count+5 {
			return nil, fmt.Errorf("%w: line %d: length", ErrHexSyntax, line)
		}
		var sum byte
		for _, b := range raw {
			sum += b
		}
		if sum != 0 {
			return nil, fmt.Errorf("%w: line %d", ErrHexChecksum, line)
		}
		addr := int(raw[1])<<8 | int(raw[2])
		typ := raw[3]
		data := raw[4 : 4+count]
		switch typ {
		case recData:
			img.insert(addr, data)
		case recEOF:
			sawEOF = true
		default:
			return nil, fmt.Errorf("%w: line %d: record type %#x", ErrHexSyntax, line, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serial: read hex: %w", err)
	}
	if !sawEOF {
		return nil, ErrNoEOF
	}
	return img, nil
}

// insert merges data at addr into the span set, coalescing with an
// adjacent preceding span when contiguous.
func (img *Image) insert(addr int, data []byte) {
	for start, span := range img.Spans {
		if start+len(span) == addr {
			img.Spans[start] = append(span, data...)
			return
		}
	}
	img.Spans[addr] = append([]byte(nil), data...)
}

// Version extracts the embedded version string, if present.
func (img *Image) Version() (string, bool) {
	for start, span := range img.Spans {
		if start <= VersionAddr && VersionAddr+VersionLen <= start+len(span) {
			v := span[VersionAddr-start : VersionAddr-start+VersionLen]
			return strings.TrimRight(string(v), "\x00"), true
		}
	}
	return "", false
}
