package serial

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestPortRoundTrip(t *testing.T) {
	a, b := Pair(0)
	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("read %q", buf[:n])
	}
	// Other direction.
	if _, err := b.Write([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	n, err = a.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "yo" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestPortEmptyReadNonBlocking(t *testing.T) {
	a, _ := Pair(0)
	n, err := a.Read(make([]byte, 4))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPortClose(t *testing.T) {
	a, b := Pair(0)
	b.Close()
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write to closed peer: %v", err)
	}
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read on closed port: %v", err)
	}
}

func TestPortWireTimeAndStats(t *testing.T) {
	a, b := Pair(9600)
	if _, err := a.Write(make([]byte, 960)); err != nil {
		t.Fatal(err)
	}
	// 960 bytes * 10 bits / 9600 bps = 1 s.
	if got := a.WireTime().Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("wire time %.3f s", got)
	}
	buf := make([]byte, 2000)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	tx, _ := a.Stats()
	_, rx := b.Stats()
	if tx != 960 || rx != 960 {
		t.Fatalf("tx=%d rx=%d", tx, rx)
	}
}

func TestFlashEraseProgramRead(t *testing.T) {
	f := NewFlash()
	page := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := f.ProgramPage(0, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("readback mismatch")
	}
	// Reprogramming without erase fails.
	if err := f.ProgramPage(0, page); !errors.Is(err, ErrNotErased) {
		t.Fatalf("double program: %v", err)
	}
	if err := f.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != ErasedByte {
		t.Fatal("erase did not clear")
	}
	if err := f.ProgramPage(0, page); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	cycles, err := f.EraseCycles(0)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 || f.MaxEraseCycles() != 1 {
		t.Fatalf("cycles=%d max=%d", cycles, f.MaxEraseCycles())
	}
}

func TestFlashValidation(t *testing.T) {
	f := NewFlash()
	if err := f.ErasePage(FlashSize); !errors.Is(err, ErrFlashBounds) {
		t.Fatalf("erase oob: %v", err)
	}
	if err := f.ErasePage(3); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("erase unaligned: %v", err)
	}
	if err := f.ProgramPage(0, []byte{1}); err == nil {
		t.Fatal("short page accepted")
	}
	if err := f.Read(FlashSize-1, make([]byte, 2)); !errors.Is(err, ErrFlashBounds) {
		t.Fatalf("read oob: %v", err)
	}
}

func TestIntelHexRoundTrip(t *testing.T) {
	img, err := BuildImage([]byte("firmware code bytes here"), "distscroll-1.2.0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.EncodeHex(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeHex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != img.Size() {
		t.Fatalf("size %d vs %d", back.Size(), img.Size())
	}
	v, ok := back.Version()
	if !ok || v != "distscroll-1.2.0" {
		t.Fatalf("version %q ok=%t", v, ok)
	}
}

func TestIntelHexRoundTripProperty(t *testing.T) {
	rng := sim.NewRand(1)
	f := func(_ uint8) bool {
		n := 1 + rng.Intn(300)
		code := make([]byte, n)
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		img, err := BuildImage(code, "v")
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := img.EncodeHex(&buf); err != nil {
			return false
		}
		back, err := DecodeHex(&buf)
		if err != nil {
			return false
		}
		got, ok := back.Spans[0]
		return ok && bytes.Equal(got, code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntelHexRejectsCorruption(t *testing.T) {
	img, err := BuildImage([]byte{1, 2, 3, 4}, "v1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.EncodeHex(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// Flip a data nibble: checksum must catch it.
	bad := strings.Replace(text, "01020304", "01020305", 1)
	if bad == text {
		t.Fatal("test setup: data bytes not found")
	}
	if _, err := DecodeHex(strings.NewReader(bad)); !errors.Is(err, ErrHexChecksum) {
		t.Fatalf("corrupted hex: %v", err)
	}
	// Truncated file without EOF.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if _, err := DecodeHex(strings.NewReader(strings.Join(lines[:len(lines)-1], "\n"))); !errors.Is(err, ErrNoEOF) {
		t.Fatalf("missing EOF: %v", err)
	}
	// Garbage line.
	if _, err := DecodeHex(strings.NewReader("hello\n")); !errors.Is(err, ErrHexSyntax) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestBuildImageValidation(t *testing.T) {
	if _, err := BuildImage(make([]byte, VersionAddr+1), "v"); err == nil {
		t.Fatal("oversized code accepted")
	}
	if _, err := BuildImage([]byte{1}, strings.Repeat("v", VersionLen)); err == nil {
		t.Fatal("oversized version accepted")
	}
}

// download wires a programmer to a bootloader over a port pair and runs a
// full firmware download.
func download(t *testing.T, img *Image) (*Flash, *Bootloader) {
	t.Helper()
	host, dev := Pair(38_400)
	flash := NewFlash()
	bl, err := NewBootloader(dev, flash)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgrammer(host, bl.Service)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Download(img); err != nil {
		t.Fatal(err)
	}
	return flash, bl
}

func TestBootloaderDownloadAndVerify(t *testing.T) {
	code := bytes.Repeat([]byte{0xC0, 0xDE}, 600) // 1200 bytes across pages
	img, err := BuildImage(code, "distscroll-2.0.0")
	if err != nil {
		t.Fatal(err)
	}
	flash, bl := download(t, img)
	if err := Verify(flash, img); err != nil {
		t.Fatal(err)
	}
	v, err := InstalledVersion(flash)
	if err != nil {
		t.Fatal(err)
	}
	if v != "distscroll-2.0.0" {
		t.Fatalf("installed version %q", v)
	}
	if bl.Naks() != 0 {
		t.Fatalf("naks = %d", bl.Naks())
	}
	if bl.Records() == 0 {
		t.Fatal("no records processed")
	}
}

func TestBootloaderUpgradePreservesOtherSpans(t *testing.T) {
	v1, err := BuildImage([]byte("version one code"), "v1")
	if err != nil {
		t.Fatal(err)
	}
	flash, _ := download(t, v1)
	// Second download over the same flash (bootloader does RMW per page).
	host, dev := Pair(0)
	bl, err := NewBootloader(dev, flash)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgrammer(host, bl.Service)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := BuildImage([]byte("version two code, longer than before"), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Download(v2); err != nil {
		t.Fatal(err)
	}
	if err := Verify(flash, v2); err != nil {
		t.Fatal(err)
	}
	ver, err := InstalledVersion(flash)
	if err != nil {
		t.Fatal(err)
	}
	if ver != "v2" {
		t.Fatalf("version %q", ver)
	}
	if flash.MaxEraseCycles() < 2 {
		t.Fatalf("wear tracking: max cycles %d", flash.MaxEraseCycles())
	}
}

func TestBootloaderNaksCorruptRecord(t *testing.T) {
	host, dev := Pair(0)
	flash := NewFlash()
	bl, err := NewBootloader(dev, flash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.Write([]byte(":0400000001020304F1\n")); err != nil { // bad checksum
		t.Fatal(err)
	}
	if err := bl.Service(); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 1)
	n, err := host.Read(reply)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || reply[0] != Nak {
		t.Fatalf("reply %v", reply[:n])
	}
	if bl.Naks() != 1 {
		t.Fatalf("naks = %d", bl.Naks())
	}
}

func TestProgrammerSurfacesNak(t *testing.T) {
	host, dev := Pair(0)
	flash := NewFlash()
	bl, err := NewBootloader(dev, flash)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgrammer(host, func() error {
		// Corrupt the device's view: drain and replace with garbage.
		buf := make([]byte, 256)
		for {
			n, err := dev.Read(buf)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
		}
		if _, err := dev.Write(nil); err != nil {
			return err
		}
		// Feed a corrupt line directly.
		if _, err := host.Write(nil); err != nil {
			return err
		}
		bl.handleLine(":BROKEN")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := BuildImage([]byte{1, 2, 3}, "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Download(img); !errors.Is(err, ErrNak) {
		t.Fatalf("download with corruption: %v", err)
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	img, err := BuildImage([]byte{9, 9, 9, 9}, "v")
	if err != nil {
		t.Fatal(err)
	}
	flash := NewFlash() // never programmed
	if err := Verify(flash, img); !errors.Is(err, ErrVerify) {
		t.Fatalf("verify on blank flash: %v", err)
	}
}
