package serial

import (
	"errors"
	"fmt"
)

// PIC 18F452 flash geometry.
const (
	// FlashSize is the program memory size (32 KB).
	FlashSize = 32 * 1024
	// PageSize is the erase/write block size.
	PageSize = 64
	// ErasedByte is the value of erased flash cells.
	ErasedByte = 0xFF
)

// Flash errors.
var (
	// ErrFlashBounds is returned for out-of-range addresses.
	ErrFlashBounds = errors.New("serial: flash address out of range")
	// ErrNotErased is returned when programming a page that was not
	// erased first (flash cells only clear bits).
	ErrNotErased = errors.New("serial: page not erased")
	// ErrUnaligned is returned for page operations off a page boundary.
	ErrUnaligned = errors.New("serial: unaligned page address")
)

// Flash is the microcontroller's self-writable program memory, with the
// real constraint that a page must be erased before it is programmed, and
// a per-page erase-cycle counter (flash wears out).
type Flash struct {
	data   [FlashSize]byte
	erased [FlashSize / PageSize]bool
	cycles [FlashSize / PageSize]uint32
}

// NewFlash returns fully erased flash.
func NewFlash() *Flash {
	f := &Flash{}
	for i := range f.data {
		f.data[i] = ErasedByte
	}
	for i := range f.erased {
		f.erased[i] = true
	}
	return f
}

// ErasePage erases the page containing addr (addr must be page-aligned).
func (f *Flash) ErasePage(addr int) error {
	if addr < 0 || addr >= FlashSize {
		return fmt.Errorf("%w: %#x", ErrFlashBounds, addr)
	}
	if addr%PageSize != 0 {
		return fmt.Errorf("%w: %#x", ErrUnaligned, addr)
	}
	page := addr / PageSize
	for i := addr; i < addr+PageSize; i++ {
		f.data[i] = ErasedByte
	}
	f.erased[page] = true
	f.cycles[page]++
	return nil
}

// ProgramPage writes exactly one page at a page-aligned address. The page
// must have been erased since its last programming.
func (f *Flash) ProgramPage(addr int, data []byte) error {
	if addr < 0 || addr+PageSize > FlashSize {
		return fmt.Errorf("%w: %#x", ErrFlashBounds, addr)
	}
	if addr%PageSize != 0 {
		return fmt.Errorf("%w: %#x", ErrUnaligned, addr)
	}
	if len(data) != PageSize {
		return fmt.Errorf("serial: page write needs %d bytes, got %d", PageSize, len(data))
	}
	page := addr / PageSize
	if !f.erased[page] {
		return fmt.Errorf("%w: page %d", ErrNotErased, page)
	}
	copy(f.data[addr:], data)
	f.erased[page] = false
	return nil
}

// Read copies flash contents from addr into buf.
func (f *Flash) Read(addr int, buf []byte) error {
	if addr < 0 || addr+len(buf) > FlashSize {
		return fmt.Errorf("%w: %#x+%d", ErrFlashBounds, addr, len(buf))
	}
	copy(buf, f.data[addr:addr+len(buf)])
	return nil
}

// EraseCycles reports the erase count of the page containing addr.
func (f *Flash) EraseCycles(addr int) (uint32, error) {
	if addr < 0 || addr >= FlashSize {
		return 0, fmt.Errorf("%w: %#x", ErrFlashBounds, addr)
	}
	return f.cycles[addr/PageSize], nil
}

// MaxEraseCycles reports the highest erase count across all pages — the
// wear figure a maintainer watches.
func (f *Flash) MaxEraseCycles() uint32 {
	var maxC uint32
	for _, c := range f.cycles {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}
