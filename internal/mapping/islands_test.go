package mapping

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/gp2d120"
)

func characteristic() Characteristic {
	s := gp2d120.Default(nil)
	return s.Ideal
}

func newMapper(t *testing.T, entries int) *Mapper {
	t.Helper()
	m, err := New(DefaultConfig(entries), characteristic())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIslandsDisjointAndGapped(t *testing.T) {
	for _, n := range []int{2, 5, 10, 20, 40} {
		m := newMapper(t, n)
		islands := m.Islands()
		if len(islands) != n {
			t.Fatalf("n=%d: %d islands", n, len(islands))
		}
		for i := 1; i < len(islands); i++ {
			// Sorted ascending by voltage with a strict gap between
			// consecutive islands ("these islands do not cover the
			// complete spectrum").
			if islands[i].Lo <= islands[i-1].Hi {
				t.Fatalf("n=%d: islands %d and %d overlap or touch: [%f,%f] [%f,%f]",
					n, i-1, i, islands[i-1].Lo, islands[i-1].Hi, islands[i].Lo, islands[i].Hi)
			}
		}
	}
}

func TestIslandCentresEquallySpacedInDistance(t *testing.T) {
	// "we provide the user with the perception that the entries are
	// equally spaced on the complete scrollable distance".
	m := newMapper(t, 10)
	islands := m.Islands()
	var dists []float64
	for _, is := range islands {
		dists = append(dists, is.DistanceCm)
	}
	step := (30.0 - 4.0) / 9
	for i := 1; i < len(dists); i++ {
		gap := math.Abs(dists[i] - dists[i-1])
		if math.Abs(gap-step) > 1e-9 {
			t.Fatalf("distance spacing %f, want %f", gap, step)
		}
	}
}

func TestVoltageSpacingIsNonLinear(t *testing.T) {
	// The whole point of the island construction: equal distance spacing
	// means *unequal* voltage spacing (dense far, wide near).
	m := newMapper(t, 10)
	islands := m.Islands() // ascending voltage = descending distance
	first := islands[1].Center - islands[0].Center
	last := islands[len(islands)-1].Center - islands[len(islands)-2].Center
	if last < 2*first {
		t.Fatalf("voltage spacing should grow towards near range: far=%f near=%f", first, last)
	}
}

func TestDirectionMapping(t *testing.T) {
	down, err := New(DefaultConfig(5), characteristic())
	if err != nil {
		t.Fatal(err)
	}
	cfgUp := DefaultConfig(5)
	cfgUp.Direction = TowardsIsUp
	up, err := New(cfgUp, characteristic())
	if err != nil {
		t.Fatal(err)
	}
	// TowardsIsDown: nearest distance (highest voltage) is the last entry.
	dNear, err := down.DistanceFor(4)
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := down.DistanceFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if dNear >= dFar {
		t.Fatalf("TowardsIsDown: entry 4 at %f should be nearer than entry 0 at %f", dNear, dFar)
	}
	// TowardsIsUp: inverted.
	uNear, err := up.DistanceFor(0)
	if err != nil {
		t.Fatal(err)
	}
	uFar, err := up.DistanceFor(4)
	if err != nil {
		t.Fatal(err)
	}
	if uNear >= uFar {
		t.Fatalf("TowardsIsUp: entry 0 at %f should be nearer than entry 4 at %f", uNear, uFar)
	}
}

func TestMapIslandCentresRoundTrip(t *testing.T) {
	ch := characteristic()
	f := func(nRaw, iRaw uint8) bool {
		n := int(nRaw%39) + 2 // 2..40
		m, err := New(DefaultConfig(n), ch)
		if err != nil {
			return false
		}
		idx := int(iRaw) % n
		is, ok := m.IslandFor(idx)
		if !ok {
			return false
		}
		got, active := m.Map(is.Center)
		return active && got == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenIslandsNoSelection(t *testing.T) {
	m := newMapper(t, 5)
	islands := m.Islands()
	// Midpoint of the gap between two islands.
	gapMid := (islands[1].Hi + islands[2].Lo) / 2
	idx, active := m.Map(gapMid)
	if active || idx != -1 {
		t.Fatalf("gap voltage selected entry %d", idx)
	}
	if m.Current() != -1 {
		t.Fatalf("Current = %d, want -1", m.Current())
	}
}

func TestHysteresisHoldsSelectionAtBoundary(t *testing.T) {
	m := newMapper(t, 5)
	islands := m.Islands()
	is := islands[2]
	// Enter the island.
	if _, active := m.Map(is.Center); !active {
		t.Fatal("failed to enter island")
	}
	// Step just outside: hysteresis keeps us selected.
	h := m.Config().Hysteresis * (is.Hi - is.Lo) / 2
	idx, active := m.Map(is.Hi + h/2)
	if !active || idx != is.Index {
		t.Fatalf("hysteresis failed: idx=%d active=%t", idx, active)
	}
	// Step well outside: this island's selection drops (the voltage may
	// land in a neighbouring island, but never stick to this one).
	if idx, active := m.Map(is.Hi + 10*h); active && idx == is.Index {
		t.Fatal("selection stuck to the island far outside its bounds")
	}
}

func TestHysteresisSuppressesBoundaryFlicker(t *testing.T) {
	noHyst := DefaultConfig(10)
	noHyst.Hysteresis = 0
	mNo, err := New(noHyst, characteristic())
	if err != nil {
		t.Fatal(err)
	}
	mYes := newMapper(t, 10)

	islands := mYes.Islands()
	edge := islands[4].Hi
	// Tremor-like dithering across the boundary.
	flips := func(m *Mapper) int {
		m.Reset()
		count := 0
		last := -2
		for i := 0; i < 200; i++ {
			offset := 0.002
			if i%2 == 0 {
				offset = -0.002
			}
			idx, active := m.Map(edge + offset)
			cur := -1
			if active {
				cur = idx
			}
			if cur != last && last != -2 {
				count++
			}
			last = cur
		}
		return count
	}
	if fNo, fYes := flips(mNo), flips(mYes); fYes >= fNo {
		t.Fatalf("hysteresis did not reduce flicker: with=%d without=%d", fYes, fNo)
	}
}

func TestConfigValidation(t *testing.T) {
	ch := characteristic()
	if _, err := New(Config{Entries: 0, NearCm: 4, FarCm: 30}, ch); !errors.Is(err, ErrNoEntries) {
		t.Fatalf("zero entries: %v", err)
	}
	if _, err := New(Config{Entries: 3, NearCm: 30, FarCm: 4}, ch); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	bad := DefaultConfig(3)
	bad.GapFraction = 1
	if _, err := New(bad, ch); err == nil {
		t.Fatal("gap=1 accepted")
	}
	bad = DefaultConfig(3)
	bad.Hysteresis = -1
	if _, err := New(bad, ch); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
	if _, err := New(DefaultConfig(3), nil); err == nil {
		t.Fatal("nil characteristic accepted")
	}
	// Non-monotone characteristic (includes the fold-back region).
	nonMono := DefaultConfig(10)
	nonMono.NearCm = 1
	if _, err := New(nonMono, ch); !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("fold-back range: %v", err)
	}
}

func TestSingleEntry(t *testing.T) {
	m, err := New(DefaultConfig(1), characteristic())
	if err != nil {
		t.Fatal(err)
	}
	is := m.Islands()[0]
	idx, active := m.Map(is.Center)
	if !active || idx != 0 {
		t.Fatalf("single entry: idx=%d active=%t", idx, active)
	}
	if w := m.EntryWidthCm(); w != 26 {
		t.Fatalf("single-entry width = %f", w)
	}
}

func TestEntryWidth(t *testing.T) {
	m := newMapper(t, 14)
	want := 26.0 / 13
	if got := m.EntryWidthCm(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("width = %f, want %f", got, want)
	}
}

func TestDistanceForUnknownEntry(t *testing.T) {
	m := newMapper(t, 3)
	if _, err := m.DistanceFor(7); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestResetClearsHysteresis(t *testing.T) {
	m := newMapper(t, 5)
	is := m.Islands()[1]
	if _, active := m.Map(is.Center); !active {
		t.Fatal("enter failed")
	}
	m.Reset()
	if m.Current() != -1 {
		t.Fatal("Reset did not clear current island")
	}
}

func TestGapFractionZeroTouchingIslandsStillWork(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.GapFraction = 0
	cfg.Hysteresis = 0
	m, err := New(cfg, characteristic())
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range m.Islands() {
		idx, active := m.Map(is.Center)
		if !active || idx != is.Index {
			t.Fatalf("centre of island %d not mapped (got %d)", is.Index, idx)
		}
	}
}
