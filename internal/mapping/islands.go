// Package mapping implements the DistScroll island mapping of paper
// Section 4.2.
//
// The sensor characteristic is non-linear, so "we could not choose a linear
// mapping between sensor values and structure entities". Instead the paper:
//
//  1. chooses how many entities lie in the data structure,
//  2. distributes them equally over the *physical* scroll distance,
//  3. computes the expected sensor value at each entity's distance from the
//     fitted characteristic,
//  4. defines voltage "islands" around the expected values such that the
//     islands do not cover the complete spectrum — between islands no entry
//     is selected — giving "the perception that the entries are equally
//     spaced on the complete scrollable distance".
package mapping

import (
	"errors"
	"fmt"
	"sort"
)

// Direction selects which physical motion scrolls down the structure (the
// paper's open question: "Is it more intuitive to move the DistScroll
// towards oneself to scroll down or to scroll up").
type Direction int

// Direction values.
const (
	// TowardsIsDown maps moving the device towards the body to scrolling
	// down (entry index increases as distance shrinks).
	TowardsIsDown Direction = iota + 1
	// TowardsIsUp maps moving towards the body to scrolling up.
	TowardsIsUp
)

// Characteristic converts a distance in cm into the expected sensor
// voltage. It must be strictly decreasing over the mapped range (the
// monotone branch of the GP2D120 curve).
type Characteristic func(distanceCm float64) float64

// Config parameterises a Mapper.
type Config struct {
	// Entries is the number of entities to distribute.
	Entries int
	// NearCm and FarCm bound the physical scroll range (paper: 4–30 cm).
	NearCm, FarCm float64
	// GapFraction is the fraction of each inter-entry voltage span left
	// uncovered between islands (0 = touching islands, 0.4 = default).
	GapFraction float64
	// Direction maps motion to scroll direction.
	Direction Direction
	// Hysteresis widens the *current* island by this fraction of its
	// half-width so tremor at a boundary does not flicker the selection.
	Hysteresis float64
}

// DefaultConfig returns the configuration used by the prototype firmware.
func DefaultConfig(entries int) Config {
	return Config{
		Entries:     entries,
		NearCm:      4,
		FarCm:       30,
		GapFraction: 0.4,
		Direction:   TowardsIsDown,
		Hysteresis:  0.25,
	}
}

// Island is one selectable voltage interval.
type Island struct {
	Index      int     // entry index, 0-based from the top of the structure
	DistanceCm float64 // physical centre
	Center     float64 // expected voltage at the centre
	Lo, Hi     float64 // island bounds in volts
}

// Contains reports whether v lies inside the island.
func (is Island) Contains(v float64) bool { return v >= is.Lo && v <= is.Hi }

// MapStats counts mapping activity. The mapper is single-goroutine (it
// lives inside one device's firmware), so the counters are plain; the
// firmware mirrors them into its telemetry registry.
type MapStats struct {
	// Lookups counts Map calls.
	Lookups uint64
	// Holds counts hysteresis retentions: the voltage left the strict
	// island bounds but stayed within the widened band, so the selection
	// held instead of flickering.
	Holds uint64
	// Switches counts active-island changes (including entering an island
	// from the gap).
	Switches uint64
	// Misses counts lookups that landed between islands with no selection.
	Misses uint64
}

// Mapper maps filtered sensor voltages to entry indices.
type Mapper struct {
	cfg     Config
	islands []Island // sorted by ascending voltage
	current int      // active island index into islands, -1 when none
	stats   MapStats
}

// Validation errors.
var (
	// ErrNoEntries is returned for a structure with fewer than one entry.
	ErrNoEntries = errors.New("mapping: need at least one entry")
	// ErrBadRange is returned for an invalid physical range.
	ErrBadRange = errors.New("mapping: invalid distance range")
	// ErrNotMonotone is returned when the characteristic is not strictly
	// decreasing over the range.
	ErrNotMonotone = errors.New("mapping: characteristic not strictly decreasing")
)

// New builds a mapper from a configuration and a sensor characteristic.
func New(cfg Config, ch Characteristic) (*Mapper, error) {
	if cfg.Entries < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrNoEntries, cfg.Entries)
	}
	if cfg.FarCm <= cfg.NearCm || cfg.NearCm <= 0 {
		return nil, fmt.Errorf("%w: [%g,%g]", ErrBadRange, cfg.NearCm, cfg.FarCm)
	}
	if cfg.GapFraction < 0 || cfg.GapFraction >= 1 {
		return nil, fmt.Errorf("mapping: gap fraction %g not in [0,1)", cfg.GapFraction)
	}
	if cfg.Hysteresis < 0 {
		return nil, fmt.Errorf("mapping: hysteresis %g must be non-negative", cfg.Hysteresis)
	}
	if cfg.Direction == 0 {
		cfg.Direction = TowardsIsDown
	}
	if ch == nil {
		return nil, errors.New("mapping: characteristic is required")
	}

	m := &Mapper{cfg: cfg, current: -1}

	// Step 1+2: distribute entry centres equally over the physical range.
	centres := make([]float64, cfg.Entries)
	if cfg.Entries == 1 {
		centres[0] = (cfg.NearCm + cfg.FarCm) / 2
	} else {
		step := (cfg.FarCm - cfg.NearCm) / float64(cfg.Entries-1)
		for i := range centres {
			centres[i] = cfg.NearCm + float64(i)*step
		}
	}

	// Step 3: expected voltage per centre; verify monotonicity.
	volts := make([]float64, cfg.Entries)
	for i, d := range centres {
		volts[i] = ch(d)
		if i > 0 && volts[i] >= volts[i-1] {
			return nil, fmt.Errorf("%w: V(%.2fcm)=%.4f >= V(%.2fcm)=%.4f",
				ErrNotMonotone, centres[i], volts[i], centres[i-1], volts[i-1])
		}
	}

	// Step 4: islands with gaps. Each island spans (1-gap)/2 of the way
	// towards each neighbour; the outermost islands extend symmetrically.
	cover := (1 - cfg.GapFraction) / 2
	m.islands = make([]Island, cfg.Entries)
	for i := range volts {
		is := Island{DistanceCm: centres[i], Center: volts[i]}
		// Entry index depends on direction: with TowardsIsDown, the
		// nearest (highest-voltage) centre is the *last* entry.
		switch cfg.Direction {
		case TowardsIsDown:
			is.Index = cfg.Entries - 1 - i
		default:
			is.Index = i
		}
		var spanUp, spanDown float64
		switch {
		case cfg.Entries == 1:
			spanUp, spanDown = 0.05, 0.05
		case i == 0:
			spanUp = volts[i] - volts[i+1]
			spanDown = spanUp
		case i == cfg.Entries-1:
			spanDown = volts[i-1] - volts[i]
			spanUp = spanDown
		default:
			spanUp = volts[i] - volts[i+1]
			spanDown = volts[i-1] - volts[i]
		}
		is.Hi = volts[i] + cover*spanDown
		is.Lo = volts[i] - cover*spanUp
		m.islands[i] = is
	}

	// Store ascending by voltage for binary search.
	sort.Slice(m.islands, func(a, b int) bool { return m.islands[a].Center < m.islands[b].Center })
	return m, nil
}

// Config returns the mapper configuration.
func (m *Mapper) Config() Config { return m.cfg }

// Islands returns a copy of the islands sorted by ascending voltage.
func (m *Mapper) Islands() []Island {
	out := make([]Island, len(m.islands))
	copy(out, m.islands)
	return out
}

// Reset clears the hysteresis state.
func (m *Mapper) Reset() { m.current = -1 }

// Current returns the active entry index, or -1 when between islands.
func (m *Mapper) Current() int {
	if m.current < 0 {
		return -1
	}
	return m.islands[m.current].Index
}

// Map consumes a filtered voltage and returns the selected entry index and
// whether the selection is active. Between islands the previous selection
// is retained if the voltage is still within the hysteresis-widened bounds
// of the current island; otherwise no entry is selected and the previous
// index is kept only as Current() == -1 → caller keeps cursor (the paper:
// "No selection or change happens if the device is held in a distance
// between two of those islands").
func (m *Mapper) Map(v float64) (index int, active bool) {
	m.stats.Lookups++
	// Hysteresis: stay in the current island while close to it.
	if m.current >= 0 {
		is := m.islands[m.current]
		h := m.cfg.Hysteresis * (is.Hi - is.Lo) / 2
		if v >= is.Lo-h && v <= is.Hi+h {
			if v < is.Lo || v > is.Hi {
				m.stats.Holds++
			}
			return is.Index, true
		}
	}
	// Binary search for a containing island.
	lo, hi := 0, len(m.islands)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		is := m.islands[mid]
		switch {
		case v < is.Lo:
			hi = mid - 1
		case v > is.Hi:
			lo = mid + 1
		default:
			if mid != m.current {
				m.stats.Switches++
			}
			m.current = mid
			return is.Index, true
		}
	}
	m.current = -1
	m.stats.Misses++
	return -1, false
}

// Stats returns the mapping activity counters.
func (m *Mapper) Stats() MapStats { return m.stats }

// IslandFor returns the island belonging to an entry index.
func (m *Mapper) IslandFor(index int) (Island, bool) {
	for _, is := range m.islands {
		if is.Index == index {
			return is, true
		}
	}
	return Island{}, false
}

// DistanceFor returns the physical centre distance of an entry index, which
// the hand model steers towards.
func (m *Mapper) DistanceFor(index int) (float64, error) {
	is, ok := m.IslandFor(index)
	if !ok {
		return 0, fmt.Errorf("mapping: no island for entry %d", index)
	}
	return is.DistanceCm, nil
}

// EntryWidthCm returns the physical width (cm) of one entry's island plus
// gap — the effective target width W for Fitts's-law analysis.
func (m *Mapper) EntryWidthCm() float64 {
	if m.cfg.Entries <= 1 {
		return m.cfg.FarCm - m.cfg.NearCm
	}
	return (m.cfg.FarCm - m.cfg.NearCm) / float64(m.cfg.Entries-1)
}
