package plot

import (
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	p := New("title", 40, 10)
	err := p.Add(Series{Name: "measured", Marker: '*', X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "measured") {
		t.Fatal("missing legend")
	}
}

func TestAddLengthMismatch(t *testing.T) {
	p := New("t", 40, 10)
	if err := p.Add(Series{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestAutoMarkers(t *testing.T) {
	p := New("t", 40, 10)
	if err := p.Add(Series{Name: "a", X: []float64{1}, Y: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Name: "b", X: []float64{2}, Y: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("auto markers:\n%s", out)
	}
}

func TestAddFuncSamples(t *testing.T) {
	p := New("t", 40, 10)
	if err := p.AddFunc("line", '+', 0, 10, 50, func(x float64) float64 { return 2 * x }); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if strings.Count(out, "+") < 10 {
		t.Fatalf("function series too sparse:\n%s", out)
	}
}

func TestLogAxesDropNonPositive(t *testing.T) {
	p := New("t", 40, 10)
	p.LogX, p.LogY = true, true
	err := p.Add(Series{Name: "s", Marker: '*', X: []float64{-1, 0, 1, 10, 100}, Y: []float64{1, 1, 1, 10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("log plot empty:\n%s", out)
	}
}

func TestForcedRange(t *testing.T) {
	p := New("t", 40, 10)
	p.SetRange(0, 100, 0, 100)
	if err := p.Add(Series{Name: "s", Marker: '*', X: []float64{50}, Y: []float64{50}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("in-range point not drawn")
	}
	// A point outside the forced range is clipped.
	p2 := New("t", 40, 10)
	p2.SetRange(0, 10, 0, 10)
	if err := p2.Add(Series{Name: "s", Marker: '#', X: []float64{500}, Y: []float64{500}}); err != nil {
		t.Fatal(err)
	}
	body := p2.Render()
	gridPart := strings.Split(body, "+--")[0]
	if strings.Contains(gridPart, "#") {
		t.Fatal("out-of-range point drawn")
	}
}

func TestEmptyPlotRenders(t *testing.T) {
	p := New("empty", 30, 8)
	if out := p.Render(); !strings.Contains(out, "empty") {
		t.Fatal("empty plot failed to render")
	}
}

func TestMinimumSizeClamped(t *testing.T) {
	p := New("t", 1, 1)
	if p.Width < 20 || p.Height < 8 {
		t.Fatal("size not clamped")
	}
}

func TestAxisLabels(t *testing.T) {
	p := New("t", 40, 10)
	p.XLabel, p.YLabel = "distance", "volts"
	if err := p.Add(Series{Name: "s", X: []float64{1}, Y: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "distance") || !strings.Contains(out, "volts") {
		t.Fatalf("labels missing:\n%s", out)
	}
}
