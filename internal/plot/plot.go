// Package plot renders the paper's figures as ASCII charts: scatter points
// with an overlaid fitted curve on linear axes (Figure 4) or logarithmic
// axes (Figure 5), directly printable from benchmarks and tools.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one data series.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot is an ASCII chart canvas.
type Plot struct {
	Title       string
	XLabel      string
	YLabel      string
	Width       int
	Height      int
	LogX, LogY  bool
	series      []Series
	xmin, xmax  float64
	ymin, ymax  float64
	rangeForced bool
}

// New returns an empty plot of the given size.
func New(title string, width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	return &Plot{Title: title, Width: width, Height: height}
}

// Add appends a series. Non-positive values are dropped on log axes.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q: %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		markers := []byte{'*', '+', 'o', 'x', '#', '@'}
		s.Marker = markers[len(p.series)%len(markers)]
	}
	p.series = append(p.series, s)
	return nil
}

// AddFunc samples a function over [lo,hi] as a line series.
func (p *Plot) AddFunc(name string, marker byte, lo, hi float64, n int, f func(float64) float64) error {
	if n < 2 {
		n = 64
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = f(x)
	}
	return p.Add(Series{Name: name, Marker: marker, X: xs, Y: ys})
}

// SetRange forces the axis ranges instead of auto-scaling.
func (p *Plot) SetRange(xmin, xmax, ymin, ymax float64) {
	p.xmin, p.xmax, p.ymin, p.ymax = xmin, xmax, ymin, ymax
	p.rangeForced = true
}

func (p *Plot) txX(x float64) (float64, bool) {
	if p.LogX {
		if x <= 0 {
			return 0, false
		}
		return math.Log10(x), true
	}
	return x, true
}

func (p *Plot) txY(y float64) (float64, bool) {
	if p.LogY {
		if y <= 0 {
			return 0, false
		}
		return math.Log10(y), true
	}
	return y, true
}

// Render draws the chart.
func (p *Plot) Render() string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	if p.rangeForced {
		if x, ok := p.txX(p.xmin); ok {
			xmin = x
		}
		if x, ok := p.txX(p.xmax); ok {
			xmax = x
		}
		if y, ok := p.txY(p.ymin); ok {
			ymin = y
		}
		if y, ok := p.txY(p.ymax); ok {
			ymax = y
		}
	} else {
		for _, s := range p.series {
			for i := range s.X {
				if x, ok := p.txX(s.X[i]); ok {
					xmin = math.Min(xmin, x)
					xmax = math.Max(xmax, x)
				}
				if y, ok := p.txY(s.Y[i]); ok {
					ymin = math.Min(ymin, y)
					ymax = math.Max(ymax, y)
				}
			}
		}
	}
	if math.IsInf(xmin, 1) || xmax == xmin {
		xmin, xmax = 0, 1
	}
	if math.IsInf(ymin, 1) || ymax == ymin {
		ymin, ymax = 0, 1
	}

	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		for i := range s.X {
			tx, okx := p.txX(s.X[i])
			ty, oky := p.txY(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((tx - xmin) / (xmax - xmin) * float64(p.Width-1))
			row := p.Height - 1 - int((ty-ymin)/(ymax-ymin)*float64(p.Height-1))
			if col < 0 || col >= p.Width || row < 0 || row >= p.Height {
				continue
			}
			// Points win over line samples already drawn.
			if grid[row][col] == ' ' || s.Marker == '*' {
				grid[row][col] = s.Marker
			}
		}
	}

	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r, row := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(p.Height-1)
		fmt.Fprintf(&b, "%9.3g |%s|\n", inv(yv, p.LogY), string(row))
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", p.Width) + "+\n")
	fmt.Fprintf(&b, "%10s %-.3g%*s%.3g\n", "", inv(xmin, p.LogX), p.Width-6, "", inv(xmax, p.LogX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%10s x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&b, "%10s %c %s\n", "", s.Marker, s.Name)
	}
	return b.String()
}
