package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment once; each
// experiment carries its own internal shape assertions (learning effect,
// fit quality, expected winners) and fails loudly when the reproduction
// drifts from the paper.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(7)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.ID != r.ID {
				t.Fatalf("report id %q, want %q", rep.ID, r.ID)
			}
			if rep.Body == "" {
				t.Fatal("empty body")
			}
			if len(rep.Metrics) == 0 {
				t.Fatal("no metrics")
			}
			if !strings.Contains(rep.String(), r.ID) {
				t.Fatal("String() missing id")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("f4"); !ok {
		t.Fatal("case-insensitive find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	run := func() map[string]float64 {
		rep, err := Fig4SensorCurve(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Metrics
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("metric %s differs: %v vs %v", k, v, b[k])
		}
	}
}
