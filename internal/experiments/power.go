package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
)

// A5PowerSave quantifies the sensor duty-cycling firmware mode: the
// GP2D120s draw 66 mA of the ≈100 mA budget, so idling the sampling loop
// is the single biggest battery lever. The workload is a realistic session
// mix: short interaction bursts separated by long holds.
func A5PowerSave(seed uint64) (Report, error) {
	type cell struct {
		name      string
		powerSave bool
	}
	cells := []cell{{"always-on", false}, {"power-save", true}}

	var b strings.Builder
	fmt.Fprintf(&b, "workload: 6 x (3 s interaction burst + 27 s holding still), 3 min total\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %14s %14s\n",
		"firmware", "cycles", "duty", "battery h", "scrolls")
	metrics := map[string]float64{}

	for _, c := range cells {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Firmware.PowerSave = c.powerSave
		dev, err := core.NewDevice(cfg, menu.FlatMenu(12))
		if err != nil {
			return Report{}, err
		}
		h := hand.New(hand.DefaultProfile(), hand.BareHand(), 20, sim.NewRand(seed))
		cancel := dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
			dev.SetDistance(h.Position(at))
		})
		for burst := 0; burst < 6; burst++ {
			// Burst: sweep to a new area over ~3 s.
			target := 6.0
			if burst%2 == 1 {
				target = 26.0
			}
			done, _ := h.MoveTo(target, 2, dev.Clock.Now())
			if err := dev.Run(done - dev.Clock.Now() + 2*time.Second); err != nil {
				cancel()
				dev.Stop()
				return Report{}, err
			}
			// Hold still for 27 s (reading the selected entry).
			if err := dev.Run(27 * time.Second); err != nil {
				cancel()
				dev.Stop()
				return Report{}, err
			}
		}
		fw := dev.Firmware
		duty := fw.DutyFactor()
		life := dev.Board.BatteryLifeHoursAtDuty(duty)
		fmt.Fprintf(&b, "%-12s %10d %10.2f %14.1f %14d\n",
			c.name, fw.Stats().Cycles, duty, life, fw.Stats().ScrollEvents)
		metrics["cycles_"+c.name] = float64(fw.Stats().Cycles)
		metrics["duty_"+c.name] = duty
		metrics["battery_h_"+c.name] = life
		metrics["scrolls_"+c.name] = float64(fw.Stats().ScrollEvents)
		cancel()
		dev.Stop()
	}

	if metrics["duty_power-save"] >= 0.6 {
		return Report{}, fmt.Errorf("a5: power save duty %.2f, want well below always-on", metrics["duty_power-save"])
	}
	if metrics["battery_h_power-save"] <= metrics["battery_h_always-on"]*1.5 {
		return Report{}, fmt.Errorf("a5: battery gain too small (%.1f vs %.1f h)",
			metrics["battery_h_power-save"], metrics["battery_h_always-on"])
	}
	// The idle cadence skips intermediate islands during re-engagement
	// (one multi-entry jump instead of several single steps), so the raw
	// scroll-event count is naturally lower. The responsiveness claim is
	// that every burst still lands: require a healthy number of scrolls,
	// at least one per burst-and-return.
	if metrics["scrolls_power-save"] < 12 {
		return Report{}, fmt.Errorf("a5: power save lost interactions (%v scrolls over 6 bursts)",
			metrics["scrolls_power-save"])
	}
	fmt.Fprintf(&b, "\nduty-cycling the hungry IR sensors while the user reads roughly %.1fx the\nbattery life without losing interactions — the wake path reacts within one\nidle period (200 ms)\n",
		metrics["battery_h_power-save"]/metrics["battery_h_always-on"])
	return Report{ID: "A5", Title: "Power-save ablation", Body: b.String(), Metrics: metrics}, nil
}
