package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/study"
	"github.com/hcilab/distscroll/internal/technique"
)

// E3FittsComparison answers the paper's first open question — "Is
// distance-based scrolling faster, equal or slower than other scrolling
// techniques" — with a Fitts's-law comparison of five techniques under two
// glove conditions.
func E3FittsComparison(seed uint64) (Report, error) {
	gloves := []hand.Glove{hand.BareHand(), hand.WinterGlove()}
	makeTechs := func() []technique.Technique {
		return []technique.Technique{
			technique.NewDistScroll(),
			technique.NewTilt(),
			technique.NewButtonRepeat(),
			technique.NewWheel(),
			technique.NewStylus(),
		}
	}

	var results []study.ConditionResult
	rng := sim.NewRand(seed)
	for _, g := range gloves {
		for _, tech := range makeTechs() { // fresh instances per glove: no fatigue carry-over
			cond := study.Condition{
				Technique:  tech,
				Glove:      g,
				Entries:    20,
				Amplitudes: []int{1, 2, 4, 8, 16},
				Reps:       40,
			}
			res, err := study.RunCondition(cond, rng.Split())
			if err != nil {
				return Report{}, err
			}
			results = append(results, res)
		}
	}

	winner := func(glove string) (string, float64) {
		best, bestMT := "", 1e18
		for _, r := range results {
			if r.Glove == glove && r.MeanMT.Mean < bestMT {
				best, bestMT = r.Name, r.MeanMT.Mean
			}
		}
		return best, bestMT
	}
	bareWin, _ := winner("bare")
	winterWin, _ := winner("winter")

	var b strings.Builder
	b.WriteString(study.ConditionTable(results))
	fmt.Fprintf(&b, "\nfastest bare-handed: %s; fastest with winter gloves: %s\n", bareWin, winterWin)

	metrics := map[string]float64{}
	for _, r := range results {
		key := r.Name + "_" + r.Glove
		metrics["mt_"+key] = r.MeanMT.Mean
		metrics["err_"+key] = r.Analysis.ErrorRate
	}
	if winterWin != "distscroll" {
		return Report{}, fmt.Errorf("e3: expected distscroll to win under winter gloves, got %s", winterWin)
	}
	if bareWin == "distscroll" {
		return Report{}, fmt.Errorf("e3: distscroll should not beat direct pointing bare-handed")
	}
	return Report{ID: "E3", Title: "Technique comparison (Fitts)", Body: b.String(), Metrics: metrics}, nil
}

// E4RangeSweep answers "Is the scrolling range of 4 to 30 cm appropriate?"
// by sweeping the far edge of the range on the full device simulation.
func E4RangeSweep(seed uint64) (Report, error) {
	far := []float64{12, 16, 20, 25, 30, 36}
	var b strings.Builder
	fmt.Fprintf(&b, "10-entry menu, 8 trials per range, full-device simulation\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "range [cm]", "meanTime s", "err rate", "corr/trial")
	metrics := map[string]float64{}

	bestRange, bestTime := 0.0, 1e18
	for _, f := range far {
		rng := sim.NewRand(seed + uint64(f*10))
		specs := study.GenerateTrials(10, []int{2, 4, 8}, 3, rng)
		pcfg := participant.DefaultConfig()
		pcfg.DiscoverySweep = false
		scfg := study.SessionConfig{
			Seed:        seed + uint64(f*10),
			Participant: pcfg,
			Entries:     10,
			Trials:      specs,
		}
		scfg.Device = deviceConfigWithRange(seed, 4, f)
		res, err := study.RunSession(scfg)
		if err != nil {
			return Report{}, err
		}
		times := res.Times()
		corr := 0
		for _, r := range res.Results {
			corr += r.Corrections
		}
		meanT := stats.Mean(times)
		fmt.Fprintf(&b, "4-%-10g %12.2f %12.2f %12.2f\n",
			f, meanT, res.ErrorRate(), float64(corr)/float64(len(res.Results)))
		metrics[fmt.Sprintf("mean_s_far%g", f)] = meanT
		metrics[fmt.Sprintf("err_far%g", f)] = res.ErrorRate()
		if meanT < bestTime {
			bestRange, bestTime = f, meanT
		}
	}
	fmt.Fprintf(&b, "\nbest-performing far edge: %g cm (larger ranges widen the islands; beyond ~30 cm\nthe sensor's usable span ends, and short ranges crowd the islands below motor precision)\n", bestRange)
	metrics["best_far_cm"] = bestRange
	return Report{ID: "E4", Title: "Scroll-range sweep", Body: b.String(), Metrics: metrics}, nil
}

// E5Direction answers "Is it more intuitive to scroll down towards oneself
// or away from oneself" operationally: which mapping needs fewer
// corrective movements for the same trial set.
func E5Direction(seed uint64) (Report, error) {
	type cell struct {
		name string
		dir  int
	}
	cells := []cell{{"towards=down", 1}, {"towards=up", 2}}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "mapping", "meanTime s", "err rate", "corr/trial")
	metrics := map[string]float64{}
	for _, c := range cells {
		rng := sim.NewRand(seed)
		specs := study.GenerateTrials(10, []int{1, 2, 4, 8}, 4, rng)
		pcfg := participant.DefaultConfig()
		pcfg.DiscoverySweep = false
		scfg := study.SessionConfig{
			Seed:        seed,
			Participant: pcfg,
			Entries:     10,
			Trials:      specs,
		}
		scfg.Device = deviceConfigWithDirection(seed, c.dir)
		res, err := study.RunSession(scfg)
		if err != nil {
			return Report{}, err
		}
		corr := 0
		for _, r := range res.Results {
			corr += r.Corrections
		}
		meanT := stats.Mean(res.Times())
		fmt.Fprintf(&b, "%-14s %12.2f %12.2f %12.2f\n",
			c.name, meanT, res.ErrorRate(), float64(corr)/float64(len(res.Results)))
		metrics["mean_s_"+c.name] = meanT
		metrics["err_"+c.name] = res.ErrorRate()
	}
	b.WriteString("\nwith identical motor and perceptual parameters the mappings perform alike;\nthe choice is a convention question, as the paper suspected (it kept studying it)\n")
	return Report{ID: "E5", Title: "Scroll-direction mapping", Body: b.String(), Metrics: metrics}, nil
}

// E6LongMenus answers "How to scroll long menus?" by comparing a flat
// 100-entry island mapping, chunked access in pages of 10 (as the paper
// proposes) and a two-stage speed-dependent zoom after Igarashi & Hinckley.
func E6LongMenus(seed uint64) (Report, error) {
	const entries = 100
	rng := sim.NewRand(seed)
	targets := make([]int, 60)
	for i := range targets {
		targets[i] = rng.Intn(entries)
	}

	// All strategies are built on the same validated DistScroll kinematic
	// model; they differ in how many acquisitions of which geometry a
	// selection costs.
	model := technique.NewDistScroll()
	bare := hand.BareHand()

	flat := func(target, cursor int) technique.Result {
		d := target - cursor
		if d < 0 {
			d = -d
		}
		return model.Acquire(technique.Trial{DistanceEntries: d, TotalEntries: entries, Glove: bare}, rng)
	}

	m, err := menu.New(menu.FlatMenu(entries))
	if err != nil {
		return Report{}, err
	}
	ch, err := menu.NewChunked(m, 10)
	if err != nil {
		return Report{}, err
	}
	chunked := func(target, cursor int) technique.Result {
		curPage := cursor / 10
		wantPage, slot := ch.SlotForAbsolute(target)
		hops := wantPage - curPage
		if hops < 0 {
			hops = -hops
		}
		var out technique.Result
		// Page turning is rhythmic flicking to the end zone — a huge
		// ballistic target repeated at ~2 Hz, far cheaper than a full
		// verified acquisition.
		out.MT = time.Duration(float64(hops)*0.5*float64(time.Second)) + 300*time.Millisecond
		// Final in-page acquisition on the 12-slot geometry.
		r := model.Acquire(technique.Trial{DistanceEntries: abs(slot - 6), TotalEntries: ch.Slots(), Glove: bare}, rng)
		out.MT += r.MT
		out.Corrections = r.Corrections
		out.Err = r.Err
		return out
	}

	sdaz := func(target, cursor int) technique.Result {
		d := target - cursor
		if d < 0 {
			d = -d
		}
		// Stage 1: zoomed-out coarse jump lands within ±5 entries (the
		// display zooms out while the control moves fast).
		coarse := model.Acquire(technique.Trial{DistanceEntries: (d + 9) / 10, TotalEntries: 12, Glove: bare}, rng)
		// Stage 2: zoomed-in fine landing.
		fine := model.Acquire(technique.Trial{DistanceEntries: 1 + rng.Intn(5), TotalEntries: 12, Glove: bare}, rng)
		// A single continuous gesture: the reaction/verify pair is paid
		// twice across the two Acquire calls; discount one.
		return technique.Result{
			MT:          coarse.MT + fine.MT - 500*time.Millisecond,
			Corrections: coarse.Corrections + fine.Corrections,
			Err:         coarse.Err || fine.Err,
		}
	}

	type strat struct {
		name string
		run  func(target, cursor int) technique.Result
	}
	strategies := []strat{{"flat-100", flat}, {"chunked-10", chunked}, {"sdaz", sdaz}}

	var b strings.Builder
	fmt.Fprintf(&b, "100-entry list, %d random targets\n", len(targets))
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "strategy", "meanTime s", "corr/trial")
	metrics := map[string]float64{}
	means := map[string]float64{}
	for _, s := range strategies {
		var times []float64
		corrTotal, redoTotal := 0, 0
		cursor := 0
		for _, tgt := range targets {
			// A wrong selection (a sub-tremor island slipping at press
			// time, or an exhausted correction budget) forces a redo.
			var total time.Duration
			for attempt := 0; attempt < 4; attempt++ {
				r := s.run(tgt, cursor)
				total += r.MT
				corrTotal += r.Corrections
				if !r.Err {
					break
				}
				redoTotal++
			}
			times = append(times, total.Seconds())
			cursor = tgt
		}
		mean := stats.Mean(times)
		means[s.name] = mean
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f %8d redos\n",
			s.name, mean, float64(corrTotal)/float64(len(targets)), redoTotal)
		metrics["mean_s_"+s.name] = mean
		metrics["redos_"+s.name] = float64(redoTotal)
	}
	// Directional claim with a small noise allowance: the per-seed redo
	// randomness can swing the flat mean by a few hundred ms.
	if means["chunked-10"] >= means["flat-100"]*1.05 {
		return Report{}, fmt.Errorf("e6: chunking (%.2fs) should beat the flat mapping (%.2fs) at 100 entries",
			means["chunked-10"], means["flat-100"])
	}
	if metrics["redos_chunked-10"] > metrics["redos_flat-100"] {
		return Report{}, fmt.Errorf("e6: chunking should not redo more than flat (%v vs %v)",
			metrics["redos_chunked-10"], metrics["redos_flat-100"])
	}
	fmt.Fprintf(&b, "\nthe flat mapping packs 100 islands into 26 cm (0.26 cm pitch, far below motor\nprecision) and drowns in corrections; chunking keeps islands wide, as the paper proposes\n")
	return Report{ID: "E6", Title: "Long menus", Body: b.String(), Metrics: metrics}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
