package experiments

import (
	"fmt"
	"strings"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/study"
)

// E9GloveStudy validates the paper's central motivation on the *complete*
// simulation stack — sensor, ADC, firmware, displays, radio, motor model,
// participant — rather than the kinematic technique models of E3: how much
// do protective gloves actually cost a DistScroll user?
//
// The paper's application domains (Section 5.2): arctic/alpine gloves,
// bio/chemical laboratory gloves. Expected shape: the sensor reads the
// torso, so even heavy gloves cost only a modest slowdown.
func E9GloveStudy(seed uint64) (Report, error) {
	gloves := []hand.Glove{
		hand.BareHand(),
		hand.LatexGlove(),
		hand.ChemGlove(),
		hand.WinterGlove(),
	}
	const (
		participants = 6
		entries      = 10
	)

	var b strings.Builder
	fmt.Fprintf(&b, "%d participants per glove, 12 trials each, 10-entry menu, full device\n\n",
		participants)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %10s\n", "glove", "meanTime s", "err rate", "corr/trial", "vs bare")
	metrics := map[string]float64{}
	means := map[string]float64{}
	samples := map[string][]float64{}

	for _, glove := range gloves {
		var times []float64
		errTrials, trials, corr := 0, 0, 0
		for pid := 0; pid < participants; pid++ {
			pseed := seed + uint64(pid)*977
			rng := sim.NewRand(pseed)
			specs := study.GenerateTrials(entries, []int{1, 2, 4, 8}, 3, rng)
			pcfg := participant.DefaultConfig()
			pcfg.Glove = glove
			pcfg.DiscoverySweep = false
			res, err := study.RunSession(study.SessionConfig{
				Seed:        pseed,
				Participant: pcfg,
				Entries:     entries,
				Trials:      specs,
			})
			if err != nil {
				return Report{}, fmt.Errorf("e9: %s: %w", glove.Name, err)
			}
			times = append(times, res.Times()...)
			for _, r := range res.Results {
				trials++
				corr += r.Corrections
				if r.Errored() {
					errTrials++
				}
			}
		}
		mean := stats.Mean(times)
		means[glove.Name] = mean
		samples[glove.Name] = times
		errRate := float64(errTrials) / float64(trials)
		ratio := 1.0
		if base, ok := means["bare"]; ok && base > 0 {
			ratio = mean / base
		}
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %12.2f %9.2fx\n",
			glove.Name, mean, errRate, float64(corr)/float64(trials), ratio)
		metrics["mean_s_"+glove.Name] = mean
		metrics["err_"+glove.Name] = errRate
	}

	// Welch t-test: is the winter-vs-bare slowdown even statistically
	// detectable at this study size?
	tt, err := stats.WelchTTest(samples["winter"], samples["bare"])
	if err != nil {
		return Report{}, fmt.Errorf("e9: %w", err)
	}
	verdict := "not significant at α=0.05 — gloves are in the noise"
	if tt.Significant(0.05) {
		verdict = "significant but small"
	}
	fmt.Fprintf(&b, "\nwinter vs bare: %s (%s)\n", tt, verdict)
	metrics["winter_vs_bare_p"] = tt.P

	ratio := means["winter"] / means["bare"]
	metrics["winter_vs_bare_ratio"] = ratio
	if ratio > 1.6 {
		return Report{}, fmt.Errorf("e9: winter gloves cost %.2fx on the full stack, want < 1.6x", ratio)
	}
	if means["latex"] > means["winter"]*1.05 {
		return Report{}, fmt.Errorf("e9: latex (%.2fs) should not cost more than winter (%.2fs)",
			means["latex"], means["winter"])
	}
	fmt.Fprintf(&b, "\non the complete stack the heaviest glove costs %.0f%% — the sensor reads the\n"+
		"torso, so handwear barely touches the interaction (the paper's core claim)\n", 100*(ratio-1))
	return Report{ID: "E9", Title: "Glove study on the full stack", Body: b.String(), Metrics: metrics}, nil
}
