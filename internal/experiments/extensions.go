package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/technique"
)

// E7HybridInput answers the paper's §7 Q3 — "Is it meaningful to use
// distance scrolling in addition to normal scrolling or exclusively?" —
// by comparing distance-exclusive input, button-exclusive input and the
// combined mode across target distances on a 40-entry structure.
func E7HybridInput(seed uint64) (Report, error) {
	rng := sim.NewRand(seed)
	amplitudes := []int{1, 2, 4, 8, 16, 32}
	const entries = 40
	const reps = 60

	type model struct {
		name string
		tech technique.Technique
	}
	models := []model{
		{"distance-only", technique.NewDistScroll()},
		{"buttons-only", technique.NewButtonRepeat()},
		{"hybrid", technique.NewHybrid()},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "mean s/selection on a %d-entry structure (bare hands)\n", entries)
	fmt.Fprintf(&b, "%-14s", "distance D:")
	for _, a := range amplitudes {
		fmt.Fprintf(&b, "%8d", a)
	}
	b.WriteString("\n")

	metrics := map[string]float64{}
	means := map[string][]float64{}
	for _, m := range models {
		fmt.Fprintf(&b, "%-14s", m.name)
		for _, a := range amplitudes {
			var times []float64
			for r := 0; r < reps; r++ {
				res := m.tech.Acquire(technique.Trial{
					DistanceEntries: a,
					TotalEntries:    entries,
					Glove:           hand.BareHand(),
				}, rng)
				times = append(times, res.MT.Seconds())
			}
			mean := stats.Mean(times)
			means[m.name] = append(means[m.name], mean)
			fmt.Fprintf(&b, "%8.2f", mean)
			metrics[fmt.Sprintf("%s_d%d", m.name, a)] = mean
		}
		b.WriteString("\n")
	}

	// Shape checks: buttons win at D=1; hybrid wins at long range; the
	// combined mode is never much worse than either exclusive mode.
	last := len(amplitudes) - 1
	if means["buttons-only"][0] > means["distance-only"][0] {
		return Report{}, fmt.Errorf("e7: buttons should win at D=1 (%.2f vs %.2f)",
			means["buttons-only"][0], means["distance-only"][0])
	}
	if means["hybrid"][last] > means["buttons-only"][last] {
		return Report{}, fmt.Errorf("e7: hybrid should beat buttons at D=32 (%.2f vs %.2f)",
			means["hybrid"][last], means["buttons-only"][last])
	}
	b.WriteString("\nanswer: in addition, not exclusively — buttons win short hops, distance wins\n")
	b.WriteString("reach, and the combined mode tracks the better of the two everywhere\n")
	return Report{ID: "E7", Title: "Hybrid input (§7 Q3)", Body: b.String(), Metrics: metrics}, nil
}

// E8ButtonLayouts quantifies the Section 6 design discussion: the built
// three-button right-handed prototype vs. the favoured slidable two-button
// design vs. the single large button, for right- and left-handed users, on
// a task mixing selections and back navigations.
func E8ButtonLayouts(seed uint64) (Report, error) {
	rng := sim.NewRand(seed)
	type layoutModel struct {
		layout buttons.Layout
		// press returns the cost of one select or back press for the
		// given hand, and whether the press misfires.
		press func(hand buttons.Handedness, back bool) (time.Duration, bool)
	}

	const (
		thumbPress   = 180 * time.Millisecond
		fingerPress  = 220 * time.Millisecond
		awkwardPress = 450 * time.Millisecond
		// A layout without a back button replaces back with scrolling to
		// a "back" pseudo-entry and selecting it.
		scrollBack = 1200 * time.Millisecond
		// Reconfiguring the slidable buttons when the hand changes.
		slideCost = 2 * time.Second
	)

	layouts := []layoutModel{
		{
			layout: buttons.PrototypeLayout(),
			press: func(h buttons.Handedness, back bool) (time.Duration, bool) {
				if h == buttons.RightHanded {
					if back {
						return fingerPress, false
					}
					return thumbPress, false
				}
				// Left hand on the right-handed case: every button is on
				// the wrong side ("the restriction to the right hand is
				// introduced by the layout of the push buttons").
				return awkwardPress, rng.Bool(0.06)
			},
		},
		{
			layout: buttons.SlidableTwoButtonLayout(),
			press: func(h buttons.Handedness, back bool) (time.Duration, bool) {
				if back {
					return fingerPress, false
				}
				return thumbPress, false
			},
		},
		{
			layout: buttons.SingleLargeButtonLayout(),
			press: func(h buttons.Handedness, back bool) (time.Duration, bool) {
				if back {
					return scrollBack, rng.Bool(0.02)
				}
				return thumbPress * 5 / 6, false // big target, fast either hand
			},
		},
	}

	// Task: 6 selections and 3 back navigations (a typical hierarchical
	// menu errand), repeated.
	const (
		selects = 6
		backs   = 3
		reps    = 40
	)

	var b strings.Builder
	fmt.Fprintf(&b, "task: %d selections + %d backs; press-time model per layout\n", selects, backs)
	fmt.Fprintf(&b, "%-20s %12s %12s %10s\n", "layout", "right (s)", "left (s)", "misfires")
	metrics := map[string]float64{}
	totals := map[string]map[buttons.Handedness]float64{}

	for _, lm := range layouts {
		totals[lm.layout.Name] = map[buttons.Handedness]float64{}
		misfires := 0
		for _, h := range []buttons.Handedness{buttons.RightHanded, buttons.LeftHanded} {
			var times []float64
			for r := 0; r < reps; r++ {
				total := time.Duration(0)
				if lm.layout.Slidable && h == buttons.LeftHanded && r == 0 {
					total += slideCost // one-time reconfiguration
				}
				for s := 0; s < selects; s++ {
					dt, miss := lm.press(h, false)
					total += dt
					if miss {
						misfires++
						total += dt // repeat the press
					}
				}
				for k := 0; k < backs; k++ {
					dt, miss := lm.press(h, true)
					total += dt
					if miss {
						misfires++
						total += dt
					}
				}
				times = append(times, total.Seconds())
			}
			mean := stats.Mean(times)
			totals[lm.layout.Name][h] = mean
			key := fmt.Sprintf("%s_%s", lm.layout.Name, handName(h))
			metrics[key] = mean
		}
		fmt.Fprintf(&b, "%-20s %12.2f %12.2f %10d\n",
			lm.layout.Name,
			totals[lm.layout.Name][buttons.RightHanded],
			totals[lm.layout.Name][buttons.LeftHanded],
			misfires)
	}

	proto := totals["prototype-3button"]
	slide := totals["slidable-2button"]
	if proto[buttons.LeftHanded] <= proto[buttons.RightHanded] {
		return Report{}, fmt.Errorf("e8: prototype should penalise left-handed use")
	}
	asym := slide[buttons.LeftHanded] - slide[buttons.RightHanded]
	if asym < 0 {
		asym = -asym
	}
	if asym > 0.2 {
		return Report{}, fmt.Errorf("e8: slidable layout should be near-symmetric (asym %.2f s)", asym)
	}
	b.WriteString("\nthe slidable two-button design the paper favours is the only one that is both\n")
	b.WriteString("hand-symmetric and keeps a hardware back button; the single large button pays\n")
	b.WriteString("a scroll-to-back penalty on every hierarchy ascent\n")
	return Report{ID: "E8", Title: "Button layouts (§6)", Body: b.String(), Metrics: metrics}, nil
}

func handName(h buttons.Handedness) string {
	if h == buttons.LeftHanded {
		return "left"
	}
	return "right"
}
