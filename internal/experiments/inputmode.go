package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
)

// A6InputMode compares the paper's absolute island mapping against
// speed-dependent relative scrolling on small and large structures. The
// island mapping is direct and self-revealing but its islands shrink with
// the structure; relative scrolling is structure-size-independent but
// indirect. Measured: entries traversed by one full-range pull, and
// tremor-hold stability.
func A6InputMode(seed uint64) (Report, error) {
	sizes := []int{10, 200}
	modes := []firmware.InputMode{firmware.Absolute, firmware.Relative}

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %16s %18s\n", "mode", "entries", "reach/pull", "hold flicker/s")
	metrics := map[string]float64{}

	for _, n := range sizes {
		for _, mode := range modes {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Radio = false
			cfg.Firmware.Mode = mode
			dev, err := core.NewDevice(cfg, menu.FlatMenu(n))
			if err != nil {
				return Report{}, err
			}

			// Reach: one smooth 1-second pull across the full range.
			dev.SetDistance(28)
			if err := dev.Run(500 * time.Millisecond); err != nil {
				dev.Stop()
				return Report{}, err
			}
			startCursor := dev.Cursor()
			traj := hand.NewMinJerk(28, 5, dev.Clock.Now(), time.Second)
			cancel := dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
				dev.SetDistance(traj.Position(at))
			})
			if err := dev.Run(1500 * time.Millisecond); err != nil {
				cancel()
				dev.Stop()
				return Report{}, err
			}
			cancel()
			reach := dev.Cursor() - startCursor
			if reach < 0 {
				reach = -reach
			}

			// Stability: hold with tremor for 20 s and count changes.
			holdAt := dev.Distance()
			tremor := hand.NewTremor(0.08, sim.NewRand(seed+uint64(n)))
			before := dev.Firmware.Stats().ScrollEvents
			cancel = dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
				dev.SetDistance(holdAt + tremor.At(at))
			})
			if err := dev.Run(20 * time.Second); err != nil {
				cancel()
				dev.Stop()
				return Report{}, err
			}
			cancel()
			flicker := float64(dev.Firmware.Stats().ScrollEvents-before) / 20

			fmt.Fprintf(&b, "%-10s %8d %16d %18.2f\n", mode, n, reach, flicker)
			key := fmt.Sprintf("%s_n%d", mode, n)
			metrics["reach_"+key] = float64(reach)
			metrics["flicker_"+key] = flicker
			dev.Stop()
		}
	}

	// Shape: on 200 entries the absolute islands sit below tremor scale
	// and churn while holding; relative mode stays quiet everywhere.
	if metrics["flicker_relative_n200"] >= metrics["flicker_absolute_n200"] &&
		metrics["flicker_absolute_n200"] > 0 {
		return Report{}, fmt.Errorf("a6: relative mode should out-stabilise absolute at n=200")
	}
	b.WriteString("\nthe island mapping is ideal at menu scale (direct, self-revealing, stable)\n")
	b.WriteString("but collapses on huge structures where islands shrink below tremor; relative\n")
	b.WriteString("scrolling holds rock-steady at any size at the cost of indirectness —\n")
	b.WriteString("supporting the paper's chunking proposal for long menus instead\n")
	return Report{ID: "A6", Title: "Input-mode ablation: absolute vs relative", Body: b.String(), Metrics: metrics}, nil
}
