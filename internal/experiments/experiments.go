// Package experiments regenerates every figure and evaluation artefact of
// the paper (DESIGN.md Section 4): the sensor characterisation of Figures
// 4 and 5, the architecture and inventory of Figures 2 and 3, the menu
// walkthrough of Figure 1, the initial user study of Section 6, the open
// questions of Section 7 (E3–E6) and the design ablations (A1–A4).
//
// Each experiment is a pure function of its seed and returns a Report with
// a human-readable body and named metrics, so the bench harness and the
// CLI produce identical artefacts.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Body is the rendered figure/table text.
	Body string
	// Metrics are the headline numbers, keyed for EXPERIMENTS.md.
	Metrics map[string]float64
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s\n", r.ID, r.Title, r.Body)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-36s %12.4g\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Runner is the registry entry for one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(seed uint64) (Report, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"F1", "Menu scrolling walkthrough (paper Fig. 1)", Fig1MenuScroll},
		{"F2", "System architecture self-check (paper Fig. 2)", Fig2Architecture},
		{"F3", "Hardware inventory and power budget (paper Fig. 3)", Fig3Inventory},
		{"F4", "Sensor voltage vs. distance, measured + fit (paper Fig. 4)", Fig4SensorCurve},
		{"F5", "Sensor characteristic on log axes (paper Fig. 5)", Fig5LogFit},
		{"E1", "Island mapping properties (paper §4.2)", E1IslandMapping},
		{"E2", "Initial user study, simulated (paper §6)", E2UserStudy},
		{"E3", "Technique comparison under Fitts's law (paper §7 Q1)", E3FittsComparison},
		{"E4", "Scroll-range sweep (paper §7 Q2)", E4RangeSweep},
		{"E5", "Scroll-direction mapping (paper §7 Q4)", E5Direction},
		{"E6", "Long menus: flat vs. chunked vs. SDAZ (paper §7 Q3/Q5)", E6LongMenus},
		{"E7", "Hybrid input: distance + buttons (paper §7 Q3)", E7HybridInput},
		{"E8", "Button layout study (paper §6)", E8ButtonLayouts},
		{"E9", "Glove study on the full device stack (paper §5.2)", E9GloveStudy},
		{"A1", "Ablation: firmware filtering", A1Filtering},
		{"A2", "Ablation: island gap fraction", A2IslandGaps},
		{"A3", "Ablation: RF link quality", A3RFLink},
		{"A5", "Ablation: power-save duty cycling", A5PowerSave},
		{"A6", "Ablation: absolute vs relative input mode", A6InputMode},
	}
}

// Find returns the runner with the given ID (case-insensitive).
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
