package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/adc"
	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/plot"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
	"github.com/hcilab/distscroll/internal/stats"
)

// Fig1MenuScroll reproduces the paper's Figure 1 scenario: a user scrolls
// through the menu entries of a fictive application by moving the device;
// the top display shows the menu, the bottom display state information.
func Fig1MenuScroll(seed uint64) (Report, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	dev, err := core.NewDevice(cfg, menu.PhoneMenu())
	if err != nil {
		return Report{}, err
	}
	defer dev.Stop()

	h := hand.New(hand.DefaultProfile(), hand.BareHand(), 28, sim.NewRand(seed))
	cancel := dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
		dev.SetDistance(h.Position(at))
	})
	defer cancel()

	var frames []string
	snap := func(label string) {
		frames = append(frames, fmt.Sprintf("--- %s (cursor=%d %q) ---\ntop:\n%s\nbottom:\n%s",
			label, dev.Cursor(), dev.Menu.CurrentEntry().Title,
			dev.Board.Top.Render(), dev.Board.Bottom.Render()))
	}

	if err := dev.Run(500 * time.Millisecond); err != nil {
		return Report{}, err
	}
	snap("held far (28 cm)")

	// Scroll towards the body across the full range, as the arrow in the
	// paper's Figure 1 indicates.
	done, _ := h.MoveTo(6, 2, dev.Clock.Now())
	if err := dev.Run(done - dev.Clock.Now() + 500*time.Millisecond); err != nil {
		return Report{}, err
	}
	snap("moved near (6 cm)")

	scrolls := 0
	for _, e := range dev.Host.Events() {
		if e.Kind == rf.MsgScroll {
			scrolls++
		}
	}
	st := dev.Host.Stats()

	return Report{
		ID:    "F1",
		Title: "Menu scrolling walkthrough",
		Body:  strings.Join(frames, "\n"),
		Metrics: map[string]float64{
			"scroll_events_host": float64(scrolls),
			"host_events_total":  float64(st.Events),
			"final_cursor":       float64(dev.Cursor()),
		},
	}, nil
}

// Fig2Architecture verifies the system topology of the paper's Figure 2:
// sensors into ADC channels, displays on the I2C bus, buttons on GPIO, and
// the RF link into the host, end to end.
func Fig2Architecture(seed uint64) (Report, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	dev, err := core.NewDevice(cfg, menu.FlatMenu(8))
	if err != nil {
		return Report{}, err
	}
	defer dev.Stop()

	if err := dev.Board.SelfCheck(); err != nil {
		return Report{}, fmt.Errorf("self-check: %w", err)
	}
	// Exercise the full path: distance -> sensor -> ADC -> firmware ->
	// display + RF -> host.
	dist, err := dev.DistanceForEntry(5)
	if err != nil {
		return Report{}, err
	}
	dev.SetDistance(dist)
	if err := dev.Run(2 * time.Second); err != nil {
		return Report{}, err
	}
	busStats := dev.Board.Bus.Stats()
	hostStats := dev.Host.Stats()
	linkStats := dev.Link.Stats()

	var b strings.Builder
	b.WriteString("topology (paper Fig. 2):\n")
	b.WriteString("  GP2D120 ──> ADC ch0 ─┐\n")
	b.WriteString("  ADXL311 ──> ADC ch1/2┤   PIC 18F452 (firmware loop)\n")
	b.WriteString("  battery ──> ADC ch3 ─┘        │        │\n")
	b.WriteString("  buttons ──> GPIO ─────────────┘        │ I2C\n")
	b.WriteString("  RF module <── telemetry ───────────────┤\n")
	b.WriteString("  host PC   <── frames                   └──> 2x BT96040\n")
	fmt.Fprintf(&b, "adc samples: %d, i2c ops: %d writes / %d reads (%d bytes)\n",
		dev.Board.ADC.Samples(), busStats.Writes, busStats.Reads, busStats.Bytes)
	fmt.Fprintf(&b, "rf: sent %d, delivered %d; host decoded %d\n",
		linkStats.Sent, linkStats.Delivered, hostStats.Decoded)

	if hostStats.Decoded == 0 {
		return Report{}, fmt.Errorf("architecture path broken: no host telemetry")
	}
	return Report{
		ID:    "F2",
		Title: "System architecture self-check",
		Body:  b.String(),
		Metrics: map[string]float64{
			"adc_samples":  float64(dev.Board.ADC.Samples()),
			"i2c_bytes":    float64(busStats.Bytes),
			"rf_delivered": float64(linkStats.Delivered),
			"host_decoded": float64(hostStats.Decoded),
		},
	}, nil
}

// Fig3Inventory reproduces the hardware overview of the paper's Figure 3 as
// a bill of materials with a power budget.
func Fig3Inventory(seed uint64) (Report, error) {
	board, err := smartits.Assemble(smartits.DefaultConfig(), sim.NewRand(seed))
	if err != nil {
		return Report{}, err
	}
	return Report{
		ID:    "F3",
		Title: "Hardware inventory and power budget",
		Body:  board.InventoryReport(),
		Metrics: map[string]float64{
			"components":        float64(len(board.Inventory())),
			"total_draw_ma":     board.TotalCurrentMA(),
			"battery_life_hour": board.BatteryLifeHours(),
		},
	}, nil
}

// sensorSweep samples the noisy sensor through the 10-bit ADC across the
// distance range, mirroring how the paper measured "analog voltage at
// Smart-Its input port".
func sensorSweep(seed uint64) (ds, vs []float64, err error) {
	rng := sim.NewRand(seed)
	sensor, err := gp2d120.New(gp2d120.DefaultConfig(), gp2d120.DefaultSurface(), rng.Split())
	if err != nil {
		return nil, nil, err
	}
	conv, err := adc.New(adc.DefaultVref, 1, rng.Split())
	if err != nil {
		return nil, nil, err
	}
	var d float64
	if err := conv.Connect(0, func() float64 { return sensor.Sample(d) }); err != nil {
		return nil, nil, err
	}
	for d = 4; d <= 30.0001; d += 0.5 {
		// Average a few ADC conversions per distance, as the firmware does.
		sum := 0.0
		const reps = 8
		for r := 0; r < reps; r++ {
			code, err := conv.Read(0)
			if err != nil {
				return nil, nil, err
			}
			sum += conv.Voltage(code)
		}
		ds = append(ds, d)
		vs = append(vs, sum/reps)
	}
	return ds, vs, nil
}

// Fig4SensorCurve reproduces the paper's Figure 4: measured sensor values
// (asterisks) with an idealised curve fitted through them. The fit is the
// datasheet form V = a/(d+b) + c via Gauss-Newton.
func Fig4SensorCurve(seed uint64) (Report, error) {
	ds, vs, err := sensorSweep(seed)
	if err != nil {
		return Report{}, err
	}
	model := func(x float64, p []float64) float64 { return p[0]/(x+p[1]) + p[2] }
	fit, err := stats.GaussNewton(model, ds, vs, []float64{5, 1, 0}, 200, 1e-10)
	if err != nil {
		return Report{}, err
	}

	p := plot.New("Fig 4: GP2D120 output voltage vs. distance (✱ measured, + idealised fit)", 64, 18)
	p.XLabel, p.YLabel = "distance [cm]", "voltage [V]"
	if err := p.Add(plot.Series{Name: "measured (ADC)", Marker: '*', X: ds, Y: vs}); err != nil {
		return Report{}, err
	}
	if err := p.AddFunc("fit a/(d+b)+c", '+', 4, 30, 64, func(x float64) float64 {
		return model(x, fit.Params)
	}); err != nil {
		return Report{}, err
	}
	body := p.Render() + "\n" + fmt.Sprintf("fit: V = %.3f/(d+%.3f) + %.3f, RMSE %.4f V, R² %.5f\n",
		fit.Params[0], fit.Params[1], fit.Params[2], fit.RMSE, fit.R2)

	if fit.R2 < 0.98 {
		return Report{}, fmt.Errorf("fig4: fit R² %.4f below paper-quality threshold", fit.R2)
	}
	return Report{
		ID:    "F4",
		Title: "Sensor voltage vs. distance",
		Body:  body,
		Metrics: map[string]float64{
			"fit_a":    fit.Params[0],
			"fit_b":    fit.Params[1],
			"fit_c":    fit.Params[2],
			"fit_r2":   fit.R2,
			"fit_rmse": fit.RMSE,
			"points":   float64(len(ds)),
		},
	}, nil
}

// Fig5LogFit reproduces the paper's Figure 5: the same data on logarithmic
// axes, where "the measured values (asterisks) nearly perfectly fit the
// curve" — log(V−c) is linear in log(d+b).
func Fig5LogFit(seed uint64) (Report, error) {
	ds, vs, err := sensorSweep(seed)
	if err != nil {
		return Report{}, err
	}
	// Linearise with the datasheet offsets and regress.
	b, c := gp2d120.DefaultB, gp2d120.DefaultC
	var lx, ly []float64
	for i := range ds {
		if vs[i] <= c {
			continue
		}
		lx = append(lx, math.Log10(ds[i]+b))
		ly = append(ly, math.Log10(vs[i]-c))
	}
	fit, err := stats.LinearRegression(lx, ly)
	if err != nil {
		return Report{}, err
	}

	p := plot.New("Fig 5: sensor characteristic on log-log axes", 64, 18)
	p.LogX, p.LogY = true, true
	p.XLabel, p.YLabel = "distance+b [cm]", "voltage-c [V]"
	shiftX := make([]float64, len(ds))
	shiftY := make([]float64, len(ds))
	for i := range ds {
		shiftX[i] = ds[i] + b
		shiftY[i] = vs[i] - c
	}
	if err := p.Add(plot.Series{Name: "measured", Marker: '*', X: shiftX, Y: shiftY}); err != nil {
		return Report{}, err
	}
	body := p.Render() + "\n" + fmt.Sprintf(
		"log-log regression: slope %.4f (ideal -1), R² %.5f\n", fit.Slope, fit.R2)

	if fit.R2 < 0.995 {
		return Report{}, fmt.Errorf("fig5: log fit R² %.5f not near-perfect", fit.R2)
	}
	if math.Abs(fit.Slope+1) > 0.1 {
		return Report{}, fmt.Errorf("fig5: log-log slope %.3f far from -1", fit.Slope)
	}
	return Report{
		ID:    "F5",
		Title: "Sensor characteristic on log axes",
		Body:  body,
		Metrics: map[string]float64{
			"loglog_slope": fit.Slope,
			"loglog_r2":    fit.R2,
		},
	}, nil
}
