package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/study"
)

// deviceConfigWithRange returns the prototype device with an overridden
// physical scroll range.
func deviceConfigWithRange(seed uint64, near, far float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Firmware.Mapping.NearCm = near
	cfg.Firmware.Mapping.FarCm = far
	return cfg
}

// deviceConfigWithDirection returns the prototype device with the given
// scroll-direction mapping (1 = towards-is-down, 2 = towards-is-up).
func deviceConfigWithDirection(seed uint64, dir int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Firmware.Mapping.Direction = mapping.Direction(dir)
	return cfg
}

// A1Filtering compares the firmware filter options under a hostile signal:
// physiological tremor plus the spurious outliers of a structured
// reflective surface (the paper's stated sensor failure mode).
func A1Filtering(seed uint64) (Report, error) {
	kinds := []firmware.FilterKind{firmware.Raw, firmware.Median3, firmware.EMA, firmware.MedianEMA}
	var b strings.Builder
	fmt.Fprintf(&b, "structured reflective surface (2%% outliers) + 0.08 cm tremor, holding one entry\n")
	fmt.Fprintf(&b, "%-14s %16s %16s\n", "filter", "cursor changes", "settle lag ms")
	metrics := map[string]float64{}

	for _, kind := range kinds {
		boardCfg := core.DefaultConfig()
		boardCfg.Seed = seed
		boardCfg.Radio = false
		boardCfg.Firmware.Filter = kind
		boardCfg.Board.Surface = gp2d120.Surface{Reflectivity: 1, Structured: true, OutlierProb: 0.02}
		dev, err := core.NewDevice(boardCfg, menu.FlatMenu(10))
		if err != nil {
			return Report{}, err
		}
		// Hold at entry 5 with tremor for 40 s of virtual time.
		d, err := dev.DistanceForEntry(5)
		if err != nil {
			dev.Stop()
			return Report{}, err
		}
		tremor := hand.NewTremor(0.08, sim.NewRand(seed+uint64(kind)))
		cancel := dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
			dev.SetDistance(d + tremor.At(at))
		})
		// Measure settle lag: step from entry 1 to entry 5.
		dev.SetDistance(d)
		before := dev.Firmware.Stats().ScrollEvents
		if err := dev.Run(40 * time.Second); err != nil {
			cancel()
			dev.Stop()
			return Report{}, err
		}
		changes := dev.Firmware.Stats().ScrollEvents - before
		cancel()

		// Settle lag: teleport far, then step to the target and count
		// firmware cycles until the cursor lands.
		dev.SetDistance(28)
		if err := dev.Run(2 * time.Second); err != nil {
			dev.Stop()
			return Report{}, err
		}
		dev.SetDistance(d)
		lagStart := dev.Clock.Now()
		lag := time.Duration(0)
		for step := 0; step < 100; step++ {
			if err := dev.Run(40 * time.Millisecond); err != nil {
				dev.Stop()
				return Report{}, err
			}
			if dev.Cursor() == 5 {
				lag = dev.Clock.Now() - lagStart
				break
			}
		}
		dev.Stop()

		fmt.Fprintf(&b, "%-14s %16d %16.0f\n", kind.String(), changes, float64(lag.Milliseconds()))
		metrics["changes_"+kind.String()] = float64(changes)
		metrics["lag_ms_"+kind.String()] = float64(lag.Milliseconds())
	}
	if metrics["changes_"+firmware.MedianEMA.String()] >= metrics["changes_"+firmware.Raw.String()] {
		return Report{}, fmt.Errorf("a1: filtering failed to reduce cursor churn")
	}
	b.WriteString("\nmedian+EMA (the prototype default) suppresses outlier-driven churn at a\nmodest settle-lag cost; raw input is unusable on structured surfaces\n")
	return Report{ID: "A1", Title: "Firmware filtering ablation", Body: b.String(), Metrics: metrics}, nil
}

// A2IslandGaps sweeps the island gap fraction: gaps buy stability between
// entries at the cost of dead travel.
func A2IslandGaps(seed uint64) (Report, error) {
	gaps := []float64{0, 0.2, 0.4, 0.6}
	var b strings.Builder
	fmt.Fprintf(&b, "10-entry menu, 9 trials per gap setting, full-device simulation\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "gap", "meanTime s", "err rate", "corr/trial")
	metrics := map[string]float64{}
	for _, g := range gaps {
		rng := sim.NewRand(seed + uint64(g*100))
		specs := study.GenerateTrials(10, []int{2, 4, 8}, 3, rng)
		pcfg := participant.DefaultConfig()
		pcfg.DiscoverySweep = false
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Firmware.Mapping.GapFraction = g
		scfg := study.SessionConfig{
			Seed:        seed + uint64(g*100),
			Device:      cfg,
			Participant: pcfg,
			Entries:     10,
			Trials:      specs,
		}
		res, err := study.RunSession(scfg)
		if err != nil {
			return Report{}, err
		}
		corr := 0
		for _, r := range res.Results {
			corr += r.Corrections
		}
		fmt.Fprintf(&b, "%-8.1f %12.2f %12.2f %12.2f\n",
			g, stats.Mean(res.Times()), res.ErrorRate(), float64(corr)/float64(len(res.Results)))
		metrics[fmt.Sprintf("mean_s_gap%.1f", g)] = stats.Mean(res.Times())
		metrics[fmt.Sprintf("err_gap%.1f", g)] = res.ErrorRate()
	}
	b.WriteString("\nmoderate gaps (~0.4, the prototype value) trade a little extra travel for\nstable between-island behaviour; very large gaps shrink the selectable cover\n")
	return Report{ID: "A2", Title: "Island gap ablation", Body: b.String(), Metrics: metrics}, nil
}

// A3RFLink sweeps the radio quality and measures end-to-end event latency
// and loss visible to the host.
func A3RFLink(seed uint64) (Report, error) {
	type cell struct {
		loss    float64
		latency time.Duration
	}
	cells := []cell{
		{0, 2 * time.Millisecond},
		{0.05, 10 * time.Millisecond},
		{0.10, 30 * time.Millisecond},
		{0.20, 100 * time.Millisecond},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %12s %12s\n", "link (loss, latency)", "evt latency ms", "missed seq", "delivered")
	metrics := map[string]float64{}
	for _, c := range cells {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Link.LossProb = c.loss
		cfg.Link.Latency = c.latency
		cfg.Link.Jitter = c.latency / 4
		dev, err := core.NewDevice(cfg, menu.FlatMenu(20))
		if err != nil {
			return Report{}, err
		}
		// Sweep the device back and forth to generate traffic.
		h := hand.New(hand.DefaultProfile(), hand.BareHand(), 28, sim.NewRand(seed))
		cancel := dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
			dev.SetDistance(h.Position(at))
		})
		for i := 0; i < 6; i++ {
			target := 6.0
			if i%2 == 1 {
				target = 28
			}
			done, _ := h.MoveTo(target, 2, dev.Clock.Now())
			if err := dev.Run(done - dev.Clock.Now() + 300*time.Millisecond); err != nil {
				cancel()
				dev.Stop()
				return Report{}, err
			}
		}
		var lat []float64
		for _, e := range dev.Host.Events() {
			if e.Kind == rf.MsgScroll {
				lat = append(lat, float64((e.HostTime - e.DeviceTime).Milliseconds()))
			}
		}
		host := dev.Host.Stats()
		link := dev.Link.Stats()
		cancel()
		dev.Stop()

		fmt.Fprintf(&b, "%5.0f%% / %-12s %14.1f %12d %12d\n",
			100*c.loss, c.latency, stats.Mean(lat), host.MissedSeq, link.Delivered)
		key := fmt.Sprintf("loss%.2f", c.loss)
		metrics["latency_ms_"+key] = stats.Mean(lat)
		metrics["missed_"+key] = float64(host.MissedSeq)
	}
	b.WriteString("\nloss shows up as sequence gaps, never as corrupted events (CRC screens\nthose); latency scales directly into event delay — interaction stays usable\nbecause the device-local display does not depend on the link\n")
	return Report{ID: "A3", Title: "RF link ablation", Body: b.String(), Metrics: metrics}, nil
}
