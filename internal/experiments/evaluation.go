package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/study"
)

// E1IslandMapping verifies and quantifies the island construction of paper
// Section 4.2 across structure sizes, and measures how tremor at an island
// boundary translates into selection flicker with and without hysteresis.
func E1IslandMapping(seed uint64) (Report, error) {
	var b strings.Builder
	metrics := map[string]float64{}
	sensor := gp2d120.Default(nil)

	fmt.Fprintf(&b, "%-8s %12s %12s %14s %14s\n",
		"entries", "widthCm", "minGap mV", "nearIsle mV", "farIsle mV")
	for _, n := range []int{5, 10, 20, 40} {
		m, err := mapping.New(mapping.DefaultConfig(n), sensor.Ideal)
		if err != nil {
			return Report{}, err
		}
		islands := m.Islands()
		minGap := 1e9
		for i := 1; i < len(islands); i++ {
			if g := islands[i].Lo - islands[i-1].Hi; g < minGap {
				minGap = g
			}
			if islands[i].Lo <= islands[i-1].Hi {
				return Report{}, fmt.Errorf("e1: islands overlap at n=%d", n)
			}
		}
		near := islands[len(islands)-1]
		far := islands[0]
		fmt.Fprintf(&b, "%-8d %12.2f %12.1f %14.1f %14.1f\n",
			n, m.EntryWidthCm(), 1000*minGap,
			1000*(near.Hi-near.Lo), 1000*(far.Hi-far.Lo))
		metrics[fmt.Sprintf("min_gap_mv_n%d", n)] = 1000 * minGap
	}

	// Tremor flicker at a boundary, with vs. without hysteresis.
	flicker := func(hyst float64) (float64, error) {
		cfg := mapping.DefaultConfig(10)
		cfg.Hysteresis = hyst
		m, err := mapping.New(cfg, sensor.Ideal)
		if err != nil {
			return 0, err
		}
		tremor := hand.NewTremor(0.08, sim.NewRand(seed))
		// Hold exactly on an island edge: the island covers (1-gap)/2 of
		// the entry pitch on each side of its centre, so its boundary in
		// distance space sits that far from the centre.
		d, err := m.DistanceFor(5)
		if err != nil {
			return 0, err
		}
		edge := d + (1-cfg.GapFraction)/2*m.EntryWidthCm()
		changes := 0
		last := -2
		const n = 2000
		for i := 0; i < n; i++ {
			at := time.Duration(i) * 40 * time.Millisecond
			v := sensor.Ideal(edge + tremor.At(at))
			idx, active := m.Map(v)
			cur := -1
			if active {
				cur = idx
			}
			if last != -2 && cur != last {
				changes++
			}
			last = cur
		}
		return float64(changes) / float64(n), nil
	}
	noHyst, err := flicker(0)
	if err != nil {
		return Report{}, err
	}
	withHyst, err := flicker(0.25)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "\nboundary tremor flicker: %.3f changes/sample without hysteresis, %.3f with\n",
		noHyst, withHyst)
	metrics["flicker_no_hysteresis"] = noHyst
	metrics["flicker_with_hysteresis"] = withHyst
	if noHyst > 0 && withHyst >= noHyst {
		return Report{}, fmt.Errorf("e1: hysteresis did not reduce flicker (%.3f -> %.3f)", noHyst, withHyst)
	}

	return Report{ID: "E1", Title: "Island mapping properties", Body: b.String(), Metrics: metrics}, nil
}

// E2UserStudy re-runs the initial user study of paper Section 6 with
// simulated participants: "Even when no hints were given, the manner of
// operation was promptly discovered. Shortly after knowing the relation
// between menu entry selection and distance, all users were able to nearly
// errorless use the device."
func E2UserStudy(seed uint64) (Report, error) {
	const (
		participants  = 12
		trialsPerUser = 20
	)
	var (
		discoveries []float64
		blockErr    [4]int // error counts per 5-trial block
		blockN      [4]int
		times       []float64
	)
	for pid := 0; pid < participants; pid++ {
		pseed := seed + uint64(pid)*101
		rng := sim.NewRand(pseed)
		specs := study.GenerateTrials(10, []int{1, 2, 4, 8}, trialsPerUser/4, rng)
		cfg := study.SessionConfig{
			Seed:        pseed,
			Participant: participant.DefaultConfig(),
			Entries:     10,
			Trials:      specs,
		}
		res, err := study.RunSession(cfg)
		if err != nil {
			return Report{}, err
		}
		for i, r := range res.Results {
			block := i * 4 / len(res.Results)
			if block > 3 {
				block = 3
			}
			blockN[block]++
			if r.Errored() {
				blockErr[block]++
			}
			if r.Discovery > 0 {
				discoveries = append(discoveries, r.Discovery.Seconds())
			}
			times = append(times, (r.Time - r.Discovery).Seconds())
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%d participants x %d selection trials on a 10-entry menu\n\n", participants, trialsPerUser)
	fmt.Fprintf(&b, "discovery sweep (first contact): %s s\n", stats.Summarize(discoveries).String())
	fmt.Fprintf(&b, "trial time: %s s\n\n", stats.Summarize(times).String())
	fmt.Fprintf(&b, "error rate by trial block (learning curve):\n")
	metrics := map[string]float64{
		"participants":     participants,
		"mean_trial_s":     stats.Mean(times),
		"mean_discovery_s": stats.Mean(discoveries),
	}
	var rates [4]float64
	for blk := 0; blk < 4; blk++ {
		rates[blk] = float64(blockErr[blk]) / float64(blockN[blk])
		fmt.Fprintf(&b, "  trials %2d-%2d: %5.1f%%\n", blk*5+1, blk*5+5, 100*rates[blk])
		metrics[fmt.Sprintf("error_rate_block%d", blk+1)] = rates[blk]
	}
	if rates[3] > rates[0] {
		return Report{}, fmt.Errorf("e2: no learning effect (block1 %.2f, block4 %.2f)", rates[0], rates[3])
	}
	fmt.Fprintf(&b, "\nfinding: errors fall from %.0f%% to %.0f%% — 'nearly errorless' after learning\n",
		100*rates[0], 100*rates[3])

	// Hierarchical block: the paper's study "simulated a fictive mobile
	// phone menu" — run practised participants through random leaf tasks
	// on the real tree, back to the root between tasks.
	hier, err := e2HierarchicalBlock(seed)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "\nhierarchical block (phone menu, 4 practised participants x 4 leaf tasks):\n")
	fmt.Fprintf(&b, "  task time: %s s, wrong selections: %.0f\n",
		stats.Summarize(hier.taskTimes).String(), hier.wrong)
	metrics["hier_mean_task_s"] = stats.Mean(hier.taskTimes)
	metrics["hier_wrong"] = hier.wrong
	return Report{ID: "E2", Title: "Initial user study (simulated)", Body: b.String(), Metrics: metrics}, nil
}

type hierResult struct {
	taskTimes []float64
	wrong     float64
}

func coreDefaultConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

func coreNewDevice(cfg core.Config) (*core.Device, error) {
	return core.NewDevice(cfg, menu.PhoneMenu())
}

func menuPhone() *menu.Node { return menu.PhoneMenu() }

// e2HierarchicalBlock runs practised participants through leaf-selection
// tasks on the fictive phone menu.
func e2HierarchicalBlock(seed uint64) (hierResult, error) {
	var out hierResult
	for pid := 0; pid < 4; pid++ {
		pseed := seed + 5000 + uint64(pid)*31
		devCfg := coreDefaultConfig(pseed)
		dev, err := coreNewDevice(devCfg)
		if err != nil {
			return out, fmt.Errorf("e2: hierarchical: %w", err)
		}
		pcfg := participant.DefaultConfig()
		pcfg.DiscoverySweep = false
		pcfg.LearningTau = 1 // practised
		p, err := participant.New(pcfg, dev, sim.NewRand(pseed^0x55))
		if err != nil {
			dev.Stop()
			return out, err
		}
		rng := sim.NewRand(pseed)
		paths, err := study.GenerateLeafPaths(menuPhone(), 4, rng)
		if err != nil {
			p.Detach()
			dev.Stop()
			return out, err
		}
		for _, task := range paths {
			start := dev.Clock.Now()
			results, err := p.NavigateTo(task.Indices)
			if err != nil {
				p.Detach()
				dev.Stop()
				return out, fmt.Errorf("e2: task %q: %w", task.Title, err)
			}
			for _, r := range results {
				if r.WrongSelection {
					out.wrong++
				}
			}
			out.taskTimes = append(out.taskTimes, (dev.Clock.Now() - start).Seconds())
			if err := p.ReturnToRoot(); err != nil {
				p.Detach()
				dev.Stop()
				return out, err
			}
		}
		p.Detach()
		dev.Stop()
	}
	return out, nil
}
