// Package i2c simulates the inter-integrated-circuit bus that connects the
// Smart-Its add-on board to the two Barton BT96040 chip-on-glass displays
// (paper Section 4.4: "They are connected to the Smart-Its via the
// I2C-bus").
//
// The model is transaction-level: a master issues write and read
// transactions against 7-bit addresses; slaves either acknowledge and
// process the bytes or the transaction fails with ErrNack. Timing is
// accounted per transferred byte so firmware-cycle costs are realistic.
package i2c

import (
	"errors"
	"fmt"
	"time"
)

// Bus errors.
var (
	// ErrNack is returned when no slave acknowledges the address.
	ErrNack = errors.New("i2c: address not acknowledged")
	// ErrAddressInUse is returned when attaching a second slave at an
	// occupied address.
	ErrAddressInUse = errors.New("i2c: address already in use")
	// ErrInvalidAddress is returned for addresses outside the 7-bit range
	// or inside the reserved ranges.
	ErrInvalidAddress = errors.New("i2c: invalid 7-bit address")
)

// Slave is a device attached to the bus.
type Slave interface {
	// WriteBytes delivers a master→slave write transaction payload.
	WriteBytes(data []byte) error
	// ReadBytes serves a slave→master read of n bytes.
	ReadBytes(n int) ([]byte, error)
}

// Stats counts bus activity.
type Stats struct {
	Writes      uint64
	Reads       uint64
	Bytes       uint64
	Nacks       uint64
	BusTime     time.Duration
	PerSlaveOps map[byte]uint64
}

// Bus is a single-master I2C bus.
type Bus struct {
	slaves map[byte]Slave
	// clockHz is the bus clock; standard mode is 100 kHz.
	clockHz int
	stats   Stats
}

// NewBus returns a bus running at the given clock rate (Hz). A rate <= 0
// selects standard mode (100 kHz).
func NewBus(clockHz int) *Bus {
	if clockHz <= 0 {
		clockHz = 100_000
	}
	return &Bus{
		slaves:  make(map[byte]Slave),
		clockHz: clockHz,
	}
}

// Attach registers a slave at a 7-bit address.
func (b *Bus) Attach(addr byte, s Slave) error {
	if addr > 0x77 || addr < 0x08 {
		return fmt.Errorf("%w: %#x", ErrInvalidAddress, addr)
	}
	if _, ok := b.slaves[addr]; ok {
		return fmt.Errorf("%w: %#x", ErrAddressInUse, addr)
	}
	b.slaves[addr] = s
	return nil
}

// Detach removes the slave at addr, if any.
func (b *Bus) Detach(addr byte) { delete(b.slaves, addr) }

// Addresses returns the number of attached slaves.
func (b *Bus) Addresses() int { return len(b.slaves) }

// Write issues a master→slave write transaction.
func (b *Bus) Write(addr byte, data []byte) error {
	s, ok := b.slaves[addr]
	if !ok {
		b.stats.Nacks++
		return fmt.Errorf("%w: %#x", ErrNack, addr)
	}
	b.stats.Writes++
	b.account(addr, len(data))
	if err := s.WriteBytes(data); err != nil {
		return fmt.Errorf("i2c: write to %#x: %w", addr, err)
	}
	return nil
}

// Read issues a slave→master read transaction of n bytes.
func (b *Bus) Read(addr byte, n int) ([]byte, error) {
	s, ok := b.slaves[addr]
	if !ok {
		b.stats.Nacks++
		return nil, fmt.Errorf("%w: %#x", ErrNack, addr)
	}
	b.stats.Reads++
	b.account(addr, n)
	data, err := s.ReadBytes(n)
	if err != nil {
		return nil, fmt.Errorf("i2c: read from %#x: %w", addr, err)
	}
	return data, nil
}

// Probe reports whether a slave acknowledges the address.
func (b *Bus) Probe(addr byte) bool {
	_, ok := b.slaves[addr]
	return ok
}

// Stats returns a copy of the accumulated bus statistics.
func (b *Bus) Stats() Stats {
	cp := b.stats
	cp.PerSlaveOps = make(map[byte]uint64, len(b.stats.PerSlaveOps))
	for k, v := range b.stats.PerSlaveOps {
		cp.PerSlaveOps[k] = v
	}
	return cp
}

// account records byte counts and bus occupancy time. Each byte costs nine
// clock cycles (8 data bits + ACK), plus one address byte per transaction.
func (b *Bus) account(addr byte, payload int) {
	bytes := uint64(payload) + 1
	b.stats.Bytes += bytes
	cycles := bytes * 9
	b.stats.BusTime += time.Duration(float64(cycles) / float64(b.clockHz) * float64(time.Second))
	if b.stats.PerSlaveOps == nil {
		b.stats.PerSlaveOps = make(map[byte]uint64)
	}
	b.stats.PerSlaveOps[addr]++
}
