package i2c

import (
	"errors"
	"testing"
)

type echoSlave struct {
	written [][]byte
	reply   []byte
	fail    error
}

func (s *echoSlave) WriteBytes(data []byte) error {
	if s.fail != nil {
		return s.fail
	}
	cp := append([]byte(nil), data...)
	s.written = append(s.written, cp)
	return nil
}

func (s *echoSlave) ReadBytes(n int) ([]byte, error) {
	if s.fail != nil {
		return nil, s.fail
	}
	if n > len(s.reply) {
		n = len(s.reply)
	}
	return s.reply[:n], nil
}

func TestAttachAndWrite(t *testing.T) {
	b := NewBus(0)
	s := &echoSlave{}
	if err := b.Attach(0x3C, s); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0x3C, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(s.written) != 1 || len(s.written[0]) != 3 {
		t.Fatalf("slave saw %v", s.written)
	}
}

func TestRead(t *testing.T) {
	b := NewBus(0)
	s := &echoSlave{reply: []byte{9, 8, 7}}
	if err := b.Attach(0x20, s); err != nil {
		t.Fatal(err)
	}
	got, err := b.Read(0x20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 9 {
		t.Fatalf("read %v", got)
	}
}

func TestNack(t *testing.T) {
	b := NewBus(0)
	if err := b.Write(0x10, []byte{1}); !errors.Is(err, ErrNack) {
		t.Fatalf("write to empty address: %v", err)
	}
	if _, err := b.Read(0x10, 1); !errors.Is(err, ErrNack) {
		t.Fatalf("read from empty address: %v", err)
	}
	if b.Stats().Nacks != 2 {
		t.Fatalf("nacks = %d, want 2", b.Stats().Nacks)
	}
}

func TestAddressValidation(t *testing.T) {
	b := NewBus(0)
	s := &echoSlave{}
	if err := b.Attach(0x00, s); !errors.Is(err, ErrInvalidAddress) {
		t.Fatalf("reserved address: %v", err)
	}
	if err := b.Attach(0x78, s); !errors.Is(err, ErrInvalidAddress) {
		t.Fatalf("10-bit range address: %v", err)
	}
	if err := b.Attach(0x3C, s); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(0x3C, &echoSlave{}); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("duplicate address: %v", err)
	}
}

func TestDetach(t *testing.T) {
	b := NewBus(0)
	if err := b.Attach(0x3C, &echoSlave{}); err != nil {
		t.Fatal(err)
	}
	if !b.Probe(0x3C) {
		t.Fatal("probe after attach failed")
	}
	b.Detach(0x3C)
	if b.Probe(0x3C) {
		t.Fatal("probe after detach succeeded")
	}
	if b.Addresses() != 0 {
		t.Fatalf("addresses = %d", b.Addresses())
	}
}

func TestSlaveErrorWrapped(t *testing.T) {
	b := NewBus(0)
	boom := errors.New("boom")
	if err := b.Attach(0x3C, &echoSlave{fail: boom}); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0x3C, []byte{1}); !errors.Is(err, boom) {
		t.Fatalf("slave error not wrapped: %v", err)
	}
	if _, err := b.Read(0x3C, 1); !errors.Is(err, boom) {
		t.Fatalf("slave read error not wrapped: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	b := NewBus(100_000)
	if err := b.Attach(0x3C, &echoSlave{reply: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0x3C, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(0x3C, 2); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("ops: %+v", st)
	}
	// 3 payload + 1 addr + 2 payload + 1 addr = 7 bytes.
	if st.Bytes != 7 {
		t.Fatalf("bytes = %d, want 7", st.Bytes)
	}
	if st.BusTime <= 0 {
		t.Fatal("bus time not accounted")
	}
	if st.PerSlaveOps[0x3C] != 2 {
		t.Fatalf("per-slave ops: %v", st.PerSlaveOps)
	}
	// Stats must be a copy.
	st.PerSlaveOps[0x3C] = 99
	if b.Stats().PerSlaveOps[0x3C] == 99 {
		t.Fatal("Stats returned internal map")
	}
}
