package distscroll_test

// Integration tests exercising several subsystems together, end to end,
// through the public API (reaching into Internal() where the scenario
// needs the experiment-grade hooks).

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	distscroll "github.com/hcilab/distscroll"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/trace"
)

// TestHierarchicalStudySession runs a simulated participant through a
// three-level navigation task on the phone menu, across the complete
// stack: motor model -> sensor -> ADC -> firmware -> menu -> RF -> host.
func TestHierarchicalStudySession(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithMenu(distscroll.PhoneMenu()))

	var selected []string
	dev.OnSelect(func(e distscroll.Event) { selected = append(selected, e.Entry) })

	p, err := participant.New(participant.DefaultConfig(), dev.Internal(), sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()

	// Settings (3) -> Tones (0) -> Ringing tone (0).
	results, err := p.NavigateTo([]int{3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	if dev.Path() != "Phone > Settings > Tones > Ringing tone" {
		t.Fatalf("path: %s", dev.Path())
	}
	if len(selected) != 1 || selected[0] != "Ringing tone" {
		t.Fatalf("host-side selections: %v", selected)
	}
	// The device's own display tracked the whole journey.
	if !strings.Contains(dev.TopDisplay(), "Ringing tone") {
		t.Fatalf("display:\n%s", dev.TopDisplay())
	}
}

// TestFlashThenOperate downloads a firmware image through the programmer
// connector of a live device's board, then keeps interacting — the
// maintenance workflow of the paper's Section 4.1.
func TestFlashThenOperate(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(8))
	board := dev.Internal().Board

	if err := board.DownloadFirmware([]byte("updated control loop"), "2.1.0"); err != nil {
		t.Fatal(err)
	}
	v, err := board.FirmwareVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "2.1.0" {
		t.Fatalf("version %q", v)
	}

	// The device still interacts normally after the download.
	d, err := dev.DistanceForEntry(5)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if dev.Cursor() != 5 {
		t.Fatalf("cursor = %d", dev.Cursor())
	}
}

// TestTraceReplayAcrossFirmwareBuilds records a session on the default
// firmware and replays the identical distance signal into a raw-filter
// build — the debugging workflow traces exist for. The raw build must see
// at least as many scroll events (no smoothing).
func TestTraceReplayAcrossFirmwareBuilds(t *testing.T) {
	recDev := newTestDevice(t, distscroll.WithEntries(10))
	rec, err := trace.Record(recDev.Internal(), "itest", 42, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	recDev.SetDistance(28)
	if err := recDev.Run(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	recDev.GlideTo(6, time.Second)
	if err := recDev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := rec.Stop()
	smoothScrolls := tr.CountKind("scroll")
	if smoothScrolls == 0 {
		t.Fatal("no scrolls recorded")
	}

	rawDev := newTestDevice(t, distscroll.WithEntries(10), distscroll.WithFilter("raw"))
	end, err := trace.Replay(tr, rawDev.Internal())
	if err != nil {
		t.Fatal(err)
	}
	if err := rawDev.Run(end - rawDev.Now() + 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rawScrolls := int(rawDev.Internal().Firmware.Stats().ScrollEvents)
	if rawScrolls < smoothScrolls {
		t.Fatalf("raw build saw %d scrolls, smoothed recording had %d", rawScrolls, smoothScrolls)
	}
}

// TestLongSessionStability runs ten minutes of virtual oscillation and
// checks every layer's accounting stays consistent.
func TestLongSessionStability(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(15))
	inner := dev.Internal()

	for i := 0; i < 60; i++ {
		target := 6.0
		if i%2 == 1 {
			target = 28.0
		}
		dev.GlideTo(target, 4*time.Second)
		if err := dev.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Now(); got < 10*time.Minute {
		t.Fatalf("virtual time %v", got)
	}
	fwStats := inner.Firmware.Stats()
	if fwStats.Cycles < 14000 { // 25 Hz * 600 s = 15000, minus startup
		t.Fatalf("cycles = %d", fwStats.Cycles)
	}
	sent, delivered, lost := dev.LinkStats()
	if delivered+lost > sent {
		t.Fatalf("link accounting: %d+%d > %d", delivered, lost, sent)
	}
	host := inner.Host.Stats()
	if host.Decoded != delivered {
		t.Fatalf("host decoded %d != delivered %d", host.Decoded, delivered)
	}
	if inner.Firmware.DisplayErrors() != 0 {
		t.Fatalf("display errors: %d", inner.Firmware.DisplayErrors())
	}
}

// TestRandomWalkNeverBreaksInvariants drives the device with arbitrary
// distance sequences and checks the cursor and signal classification stay
// valid — a property test over the whole device.
func TestRandomWalkNeverBreaksInvariants(t *testing.T) {
	rng := sim.NewRand(99)
	f := func(_ uint8) bool {
		dev, err := distscroll.New(
			distscroll.WithEntries(2+rng.Intn(30)),
			distscroll.WithSeed(rng.Uint64()),
		)
		if err != nil {
			return false
		}
		defer dev.Close()
		n := len(dev.Entries())
		for i := 0; i < 30; i++ {
			dev.SetDistance(rng.Uniform(0, 60))
			if err := dev.Run(120 * time.Millisecond); err != nil {
				return false
			}
			if c := dev.Cursor(); c < 0 || c >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestContextAdaptationDuringInteraction combines context sensing with
// live scrolling: a user swaps hands mid-session and keeps selecting.
func TestContextAdaptationDuringInteraction(t *testing.T) {
	dev := newTestDevice(t,
		distscroll.WithEntries(8),
		distscroll.WithContextSensing(true),
		// Lossless link: this test asserts on individual event delivery.
		distscroll.WithRadioLink(0, 2*time.Millisecond),
	)
	var selections int
	dev.OnSelect(func(distscroll.Event) { selections++ })

	selectEntry := func(idx int) {
		t.Helper()
		d, err := dev.DistanceForEntry(idx)
		if err != nil {
			t.Fatal(err)
		}
		dev.SetDistance(d)
		if err := dev.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		dev.PressSelect()
		if err := dev.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	dev.SetOrientation(0.6, -0.25) // right hand
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	selectEntry(2)

	dev.SetOrientation(0.6, 0.3) // swap to the left hand
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dev.Context(), "left") {
		t.Fatalf("context = %q", dev.Context())
	}
	selectEntry(5)

	if selections != 2 {
		t.Fatalf("selections = %d (button adaptation broke selection?)", selections)
	}
	if flips := dev.Internal().Firmware.HandednessFlips(); flips < 1 {
		t.Fatalf("handedness flips = %d", flips)
	}
}
