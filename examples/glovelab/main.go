// Glovelab: the paper's first application domain — "hazardous environments
// as can often be found in bio- or chemical laboratories" (Section 5.2),
// where thick protective gloves make touch and stylus input unusable.
//
// A gloved chemist browses a lab-protocol menu one-handed while the other
// hand holds a pipette. The example runs the same task under three glove
// conditions using the full device simulation plus the simulated-
// participant motor model, and reports how little the gloves cost —
// the paper's core motivation.
package main

import (
	"fmt"
	"log"
	"time"

	distscroll "github.com/hcilab/distscroll"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gloves := []hand.Glove{hand.BareHand(), hand.LatexGlove(), hand.ChemGlove()}

	fmt.Println("task: navigate Lab > Safety > Spill procedure, then log the step")
	fmt.Println("      (one hand only; the other holds the pipette)")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %12s\n", "glove", "task time s", "corrections", "errors")

	for _, glove := range gloves {
		dev, err := distscroll.New(
			distscroll.WithMenu(distscroll.LabProtocolMenu()),
			distscroll.WithSeed(7),
		)
		if err != nil {
			return err
		}

		pcfg := participant.DefaultConfig()
		pcfg.Glove = glove
		pcfg.DiscoverySweep = false
		p, err := participant.New(pcfg, dev.Internal(), sim.NewRand(7))
		if err != nil {
			dev.Close()
			return err
		}

		// Safety (1) -> Spill procedure (1), back out, Log (2) -> Record
		// step (0). NavigateTo handles the level descent per selection.
		var total float64
		corrections, errors := 0, 0
		paths := [][]int{{1, 1}}
		for _, path := range paths {
			results, err := p.NavigateTo(path)
			if err != nil {
				p.Detach()
				dev.Close()
				return err
			}
			for _, r := range results {
				total += r.Time.Seconds()
				corrections += r.Corrections
				if r.WrongSelection {
					errors++
				}
			}
		}
		// Back to the root, then into the log.
		dev.PressBack()
		if err := dev.Run(500 * time.Millisecond); err != nil {
			p.Detach()
			dev.Close()
			return err
		}
		results, err := p.NavigateTo([]int{2, 0})
		if err != nil {
			p.Detach()
			dev.Close()
			return err
		}
		for _, r := range results {
			total += r.Time.Seconds()
			corrections += r.Corrections
			if r.WrongSelection {
				errors++
			}
		}

		fmt.Printf("%-10s %14.1f %14d %12d\n", glove.Name, total, corrections, errors)
		p.Detach()
		dev.Close()
	}

	fmt.Println()
	fmt.Println("the distance sensor reads the torso, not the fingers: even the heavy")
	fmt.Println("chem glove costs only a modest slowdown — a stylus would be unusable")

	// Show what the chemist sees.
	dev, err := distscroll.New(distscroll.WithMenu(distscroll.LabProtocolMenu()), distscroll.WithSeed(7))
	if err != nil {
		return err
	}
	defer dev.Close()
	d, err := dev.DistanceForEntry(1)
	if err != nil {
		return err
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		return err
	}
	fmt.Println("\ndevice display at the Safety entry:")
	fmt.Println(dev.TopDisplay())
	return nil
}
