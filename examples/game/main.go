// Game: the paper's third application domain — "games on mobile devices.
// We think of any sort of character (e.g. aircraft) staying on a fixed
// position somewhere on the left side of the display. The altitude of the
// character is controlled by moving the DistScroll." (Section 5.2)
//
// This example maps the continuous distance signal (not the island mapping)
// onto the aircraft's altitude, scrolls obstacles towards it, and uses the
// thumb button to fire. It renders the game onto the device's own 96x40
// framebuffer.
package main

import (
	"fmt"
	"log"
	"time"

	distscroll "github.com/hcilab/distscroll"
	"github.com/hcilab/distscroll/internal/display"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

const (
	fieldW   = 48 // playfield columns (rendered 2px per cell)
	fieldH   = 18 // playfield rows
	planeCol = 4
)

type game struct {
	planeRow  int
	obstacles map[[2]int]bool // col,row
	bullets   map[[2]int]bool
	score     int
	hits      int
	ticks     int
	rng       *sim.Rand
}

func newGame(rng *sim.Rand) *game {
	return &game{
		planeRow:  fieldH / 2,
		obstacles: make(map[[2]int]bool),
		bullets:   make(map[[2]int]bool),
		rng:       rng,
	}
}

// altitudeFromDistance maps the 4-30 cm hold range linearly onto the rows:
// pulling the device close dives, pushing it away climbs.
func altitudeFromDistance(cm float64) int {
	if cm < 4 {
		cm = 4
	}
	if cm > 30 {
		cm = 30
	}
	row := int((cm - 4) / 26 * float64(fieldH-1))
	return fieldH - 1 - row
}

func (g *game) tick(distanceCm float64, firing bool) {
	g.ticks++
	g.planeRow = altitudeFromDistance(distanceCm)

	// Spawn obstacles on the right edge.
	if g.rng.Bool(0.35) {
		g.obstacles[[2]int{fieldW - 1, g.rng.Intn(fieldH)}] = true
	}
	// Fire.
	if firing {
		g.bullets[[2]int{planeCol + 1, g.planeRow}] = true
	}

	// Advance bullets right, obstacles left.
	nb := make(map[[2]int]bool, len(g.bullets))
	for b := range g.bullets {
		if b[0]+2 < fieldW {
			nb[[2]int{b[0] + 2, b[1]}] = true
		}
	}
	g.bullets = nb
	no := make(map[[2]int]bool, len(g.obstacles))
	for o := range g.obstacles {
		col := o[0] - 1
		switch {
		case col <= planeCol && o[1] == g.planeRow:
			g.hits++ // crashed into the plane
		case col >= 0:
			no[[2]int{col, o[1]}] = true
		}
	}
	g.obstacles = no

	// Bullet collisions.
	for b := range g.bullets {
		for dx := 0; dx <= 2; dx++ {
			o := [2]int{b[0] + dx, b[1]}
			if g.obstacles[o] {
				delete(g.obstacles, o)
				delete(g.bullets, b)
				g.score++
			}
		}
	}
}

// render draws the playfield into the device's top display framebuffer —
// the game runs on the device, as the paper imagines.
func (g *game) render(d *display.Display) {
	d.Clear()
	set := func(col, row int, on bool) {
		x := col * 2
		y := row * 2
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				_ = d.SetPixel(x+dx, y+dy, on)
			}
		}
	}
	set(planeCol, g.planeRow, true)
	set(planeCol-1, g.planeRow, true)
	for o := range g.obstacles {
		set(o[0], o[1], true)
	}
	for b := range g.bullets {
		set(b[0], b[1], true)
	}
}

func (g *game) ascii() string {
	grid := make([][]byte, fieldH)
	for r := range grid {
		grid[r] = make([]byte, fieldW)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for o := range g.obstacles {
		grid[o[1]][o[0]] = 'O'
	}
	for b := range g.bullets {
		grid[b[1]][b[0]] = '-'
	}
	grid[g.planeRow][planeCol] = '>'
	out := "+" + repeat('-', fieldW) + "+\n"
	for _, row := range grid {
		out += "|" + string(row) + "|\n"
	}
	out += "+" + repeat('-', fieldW) + "+"
	return out
}

func repeat(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := distscroll.New(
		// The game does not use the menu; a small list keeps the
		// firmware happy while we read the raw distance.
		distscroll.WithEntries(2),
		distscroll.WithSeed(99),
	)
	if err != nil {
		return err
	}
	defer dev.Close()

	rng := sim.NewRand(99)
	g := newGame(rng)

	// A pilot hand flies evasive manoeuvres: a sequence of altitude
	// targets executed as minimum-jerk reaches.
	pilot := hand.New(hand.DefaultProfile(), hand.BareHand(), 17, rng.Split())
	targets := []float64{8, 24, 12, 28, 6, 17, 22, 9}

	frameEvery := 50 * time.Millisecond
	frames := 0
	for _, tgt := range targets {
		done, _ := pilot.MoveTo(tgt, 3, dev.Now())
		for dev.Now() < done+200*time.Millisecond {
			dev.SetDistance(pilot.Position(dev.Now()))
			if err := dev.Run(frameEvery); err != nil {
				return err
			}
			g.tick(dev.Distance(), frames%7 == 0) // fire every 7th frame
			g.render(dev.Internal().Board.Top)
			frames++
		}
	}

	fmt.Printf("flew %d frames over %s of virtual time\n", frames, dev.Now().Truncate(time.Millisecond))
	fmt.Printf("score: %d obstacles shot, %d collisions\n\n", g.score, g.hits)
	fmt.Println("final playfield (altitude = device distance):")
	fmt.Println(g.ascii())
	fmt.Printf("\ndevice framebuffer: %d pixels lit on the 96x40 panel\n",
		dev.Internal().Board.Top.LitPixels())
	return nil
}
