// Quickstart: assemble a simulated DistScroll, scroll a phone menu by
// varying the device-to-body distance, and select an entry — the minimal
// end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Assemble the full device: GP2D120 sensor, ADC, Smart-Its board,
	// two displays, buttons, firmware and RF link — all simulated on a
	// deterministic virtual clock.
	dev, err := distscroll.New(
		distscroll.WithMenu(distscroll.PhoneMenu()),
		distscroll.WithSeed(2005),
	)
	if err != nil {
		return err
	}
	defer dev.Close()

	dev.OnScroll(func(e distscroll.Event) {
		fmt.Printf("  scrolled to %-16q (index %d)\n", e.Entry, e.Index)
	})
	dev.OnSelect(func(e distscroll.Event) {
		fmt.Printf("  SELECTED %q\n", e.Entry)
	})
	dev.OnLevel(func(e distscroll.Event) {
		fmt.Printf("  level changed: depth %d\n", e.Index)
	})

	fmt.Println("holding the device at arm's length (28 cm)...")
	dev.SetDistance(28)
	if err := dev.Run(time.Second); err != nil {
		return err
	}
	fmt.Println("\ntop display:")
	fmt.Println(dev.TopDisplay())

	fmt.Println("\nmoving the device towards the body (scrolls down)...")
	dev.GlideTo(6, 1500*time.Millisecond)
	if err := dev.Run(2 * time.Second); err != nil {
		return err
	}
	fmt.Println("\ntop display:")
	fmt.Println(dev.TopDisplay())

	// Steer precisely onto "Settings" using the island geometry.
	target := 3 // Settings
	d, err := dev.DistanceForEntry(target)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteering to entry %d at %.1f cm and pressing select...\n", target, d)
	dev.GlideTo(d, 800*time.Millisecond)
	if err := dev.Run(1200 * time.Millisecond); err != nil {
		return err
	}
	dev.PressSelect()
	if err := dev.Run(time.Second); err != nil {
		return err
	}

	fmt.Printf("\nnow inside %q — entries: %v\n", dev.Path(), dev.Entries())
	fmt.Println(dev.TopDisplay())

	sent, delivered, lost := dev.LinkStats()
	fmt.Printf("\nradio: %d frames sent, %d delivered, %d lost\n", sent, delivered, lost)
	return nil
}
