// Stocktaking: the paper's second application domain — "stocktaking where
// one hand counts or scans the items and the second hand operates the
// mobile device to input data on these items" (Section 5.2).
//
// A warehouse worker walks a shelf of items. An external scanner (the other
// hand) fires item events; after each scan the worker uses the DistScroll
// one-handed to record the count and flag discrepancies. The example drives
// the real device simulation and prints a shift summary.
package main

import (
	"fmt"
	"log"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

// item is one shelf position in this morning's count.
type item struct {
	sku      string
	expected int
	counted  int
	damaged  bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	shelf := []item{
		{sku: "BOLT-M6x40", expected: 120, counted: 120},
		{sku: "NUT-M6", expected: 300, counted: 295},
		{sku: "WASHER-6.4", expected: 500, counted: 500, damaged: true},
		{sku: "BRACKET-L", expected: 42, counted: 42},
	}

	// Wire the leaf actions of the stocktaking menu to the shift log, as
	// a real deployment would wire them to the inventory system.
	var journal []string
	current := 0
	root := distscroll.StocktakingMenu()
	hook := func(path ...int) *distscroll.Item {
		it := root
		for _, i := range path {
			it = it.Children[i]
		}
		return it
	}
	hook(0, 0).OnSelect = func() { // Count > Set quantity
		journal = append(journal, fmt.Sprintf("%s: counted %d", shelf[current].sku, shelf[current].counted))
	}
	hook(2, 1).OnSelect = func() { // Discrepancy > Mark damaged
		journal = append(journal, fmt.Sprintf("%s: DAMAGED stock flagged", shelf[current].sku))
	}
	hook(3).OnSelect = func() { // Next item
		if current < len(shelf)-1 {
			current++
		}
	}

	dev, err := distscroll.New(distscroll.WithMenu(root), distscroll.WithSeed(11))
	if err != nil {
		return err
	}
	defer dev.Close()

	// selectPath steers the device to each entry of a path and presses
	// select — the one-handed gesture sequence of the paper's scenario.
	selectPath := func(path []int) error {
		for _, idx := range path {
			d, err := dev.DistanceForEntry(idx)
			if err != nil {
				return err
			}
			dev.GlideTo(d, 600*time.Millisecond)
			if err := dev.Run(900 * time.Millisecond); err != nil {
				return err
			}
			dev.PressSelect()
			if err := dev.Run(400 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}
	backToRoot := func() error {
		for dev.Depth() > 0 {
			dev.PressBack()
			if err := dev.Run(400 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("shift start: %d shelf positions to count\n\n", len(shelf))
	for i, it := range shelf {
		fmt.Printf("[scan] %s (expected %d)\n", it.sku, it.expected)
		// Record the count: Count > Set quantity.
		if err := selectPath([]int{0, 0}); err != nil {
			return err
		}
		if err := backToRoot(); err != nil {
			return err
		}
		// Flag damage where the scanning hand found it.
		if it.damaged {
			if err := selectPath([]int{2, 1}); err != nil {
				return err
			}
			if err := backToRoot(); err != nil {
				return err
			}
		}
		// Advance to the next item (a single leaf at the root level).
		if i < len(shelf)-1 {
			if err := selectPath([]int{3}); err != nil {
				return err
			}
		}
	}

	fmt.Println("\nshift journal (written by menu leaf actions):")
	for _, line := range journal {
		fmt.Println("  -", line)
	}

	discrepancies := 0
	for _, it := range shelf {
		if it.counted != it.expected || it.damaged {
			discrepancies++
		}
	}
	fmt.Printf("\n%d positions counted, %d with discrepancies\n", len(shelf), discrepancies)
	fmt.Printf("virtual shift duration: %s\n", dev.Now().Truncate(time.Millisecond))
	sent, delivered, _ := dev.LinkStats()
	fmt.Printf("device telemetry: %d frames sent, %d delivered to the host\n", sent, delivered)
	return nil
}
