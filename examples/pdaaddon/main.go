// PDA add-on: the paper's future-work item made concrete — "a minimized
// version of the DistScroll as add-on for a PDA" (Section 7), clipped onto
// the PDA's connector (Section 5.2). The add-on is just the sensor, the
// island mapper and one button; the PDA owns the screen and the
// application list, and the two negotiate the island count over the wire.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/pda"
	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pdaEnd, addonEnd := serial.Pair(38_400)
	rng := sim.NewRand(42)

	addon, err := pda.NewAddon(pda.DefaultAddonConfig(), addonEnd, rng.Split())
	if err != nil {
		return err
	}
	apps := []string{
		"Calendar", "Contacts", "Notes", "Tasks",
		"Expenses", "Calculator", "Mail", "Settings",
	}
	host, err := pda.NewPDA(apps, pdaEnd)
	if err != nil {
		return err
	}
	var launched []string
	host.OnActivate = func(_ int, item string) {
		launched = append(launched, item)
	}

	// One-handed operation with the free hand carrying a briefcase: the
	// arm model drives the add-on's distance.
	arm := hand.New(hand.DefaultProfile(), hand.BareHand(), 20, rng.Split())

	now := time.Duration(0)
	step := func(cycles int) error {
		for i := 0; i < cycles; i++ {
			now += 40 * time.Millisecond
			addon.SetDistance(arm.Position(now))
			if err := addon.Step(now); err != nil {
				return err
			}
			if err := host.Service(); err != nil {
				return err
			}
		}
		return nil
	}

	// Let the config record land and the selection settle.
	if err := step(5); err != nil {
		return err
	}

	// Reach for "Mail" (entry 6): compute its distance and move there.
	target, err := addon.DistanceForEntry(6)
	if err != nil {
		return err
	}
	done, _ := arm.MoveTo(target, 2, now)
	if err := step(int((done-now)/(40*time.Millisecond)) + 10); err != nil {
		return err
	}

	fmt.Println("PDA screen after scrolling to Mail:")
	fmt.Println(host.Screen())

	// Thumb press on the add-on's single button launches it.
	addon.PressButton(true, now)
	if err := step(2); err != nil {
		return err
	}
	addon.PressButton(false, now)
	if err := step(2); err != nil {
		return err
	}

	fmt.Printf("\nlaunched: %v\n", launched)

	// The user opens Mail: the PDA swaps to the inbox list; the add-on
	// rebuilds its islands for the new entry count automatically.
	inbox := []string{
		"Re: meeting notes", "Lunch?", "Build failed", "ICDCS CfP",
		"Expense report", "Weekend plans",
	}
	if err := host.SetList(inbox); err != nil {
		return err
	}
	if err := step(5); err != nil {
		return err
	}
	target, err = addon.DistanceForEntry(3)
	if err != nil {
		return err
	}
	done, _ = arm.MoveTo(target, 2, now)
	if err := step(int((done-now)/(40*time.Millisecond)) + 10); err != nil {
		return err
	}

	fmt.Println("\nPDA screen in the inbox:")
	fmt.Println(host.Screen())

	tx, rx := pdaEnd.Stats()
	fmt.Printf("\nconnector traffic: PDA sent %d bytes, received %d; add-on cycles: %d\n",
		tx, rx, addon.Cycles())
	return nil
}
