package distscroll_test

import (
	"strings"
	"testing"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

func newTestDevice(t *testing.T, opts ...distscroll.Option) *distscroll.Device {
	t.Helper()
	opts = append([]distscroll.Option{distscroll.WithSeed(42)}, opts...)
	dev, err := distscroll.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(dev.Close)
	return dev
}

func TestNewRequiresMenu(t *testing.T) {
	if _, err := distscroll.New(distscroll.WithSeed(1)); err == nil {
		t.Fatal("New without a menu should fail")
	}
}

func TestScrollByDistanceMovesCursor(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(10))

	// Hold the device at the distance of entry 7 and let the firmware run.
	d, err := dev.DistanceForEntry(7)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	dev.SetDistance(d)
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := dev.Cursor(); got != 7 {
		t.Fatalf("cursor = %d, want 7", got)
	}
	if got := dev.CurrentEntry(); got != "Entry 08" {
		t.Fatalf("entry = %q, want Entry 08", got)
	}
}

func TestGlideEmitsScrollEvents(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(12))

	var events []distscroll.Event
	dev.OnScroll(func(e distscroll.Event) { events = append(events, e) })

	dev.SetDistance(28)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dev.GlideTo(6, 1500*time.Millisecond)
	if err := dev.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("expected several scroll events over a full-range glide, got %d", len(events))
	}
	// Moving towards the body scrolls down by default: indices increase.
	if events[0].Index >= events[len(events)-1].Index {
		t.Fatalf("expected increasing indices, got first=%d last=%d",
			events[0].Index, events[len(events)-1].Index)
	}
}

func TestSelectEntersSubmenuAndBackReturns(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithMenu(distscroll.PhoneMenu()))

	var levels []int
	dev.OnLevel(func(e distscroll.Event) { levels = append(levels, e.Index) })

	// Scroll to "Messages" (entry 0) and select it.
	d, err := dev.DistanceForEntry(0)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if dev.Cursor() != 0 {
		t.Fatalf("cursor = %d, want 0", dev.Cursor())
	}
	dev.PressSelect()
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if dev.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 after entering Messages", dev.Depth())
	}
	if got := dev.Entries()[0]; got != "Write message" {
		t.Fatalf("first submenu entry = %q", got)
	}
	if len(levels) == 0 || levels[len(levels)-1] != 1 {
		t.Fatalf("expected a level event with depth 1, got %v", levels)
	}

	dev.PressBack()
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if dev.Depth() != 0 {
		t.Fatalf("depth = %d, want 0 after back", dev.Depth())
	}
}

func TestSelectLeafEmitsSelectEvent(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(5))

	var selected []string
	dev.OnSelect(func(e distscroll.Event) { selected = append(selected, e.Entry) })

	d, err := dev.DistanceForEntry(2)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dev.PressSelect()
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(selected) != 1 || selected[0] != "Entry 03" {
		t.Fatalf("selected = %v, want [Entry 03]", selected)
	}
}

func TestDisplaysShowMenuAndDebugState(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithMenu(distscroll.PhoneMenu()))
	d, err := dev.DistanceForEntry(0)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	top := dev.TopDisplay()
	if !strings.Contains(top, "Messages") {
		t.Errorf("top display missing menu entries:\n%s", top)
	}
	if !strings.Contains(top, ">") {
		t.Errorf("top display missing cursor marker:\n%s", top)
	}
	bottom := dev.BottomDisplay()
	if !strings.Contains(bottom, "V=") || !strings.Contains(bottom, "bat=") {
		t.Errorf("bottom display missing debug state:\n%s", bottom)
	}
}

func TestDirectionOptionInverts(t *testing.T) {
	dev := newTestDevice(t,
		distscroll.WithEntries(10),
		distscroll.WithDirection(distscroll.TowardsIsUp),
	)
	// With TowardsIsUp, the nearest distance maps to entry 0.
	d0, err := dev.DistanceForEntry(0)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	d9, err := dev.DistanceForEntry(9)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	if d0 >= d9 {
		t.Fatalf("TowardsIsUp: entry 0 should be nearer than entry 9 (%.1f vs %.1f)", d0, d9)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, uint64) {
		dev := newTestDevice(t, distscroll.WithEntries(15))
		dev.SetDistance(25)
		if err := dev.Run(time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		dev.GlideTo(8, time.Second)
		if err := dev.Run(2 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		sent, _, _ := dev.LinkStats()
		return dev.Cursor(), sent
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: cursor %d/%d, sent %d/%d", c1, c2, s1, s2)
	}
}

func TestMenuJSONRoundTripThroughPublicAPI(t *testing.T) {
	orig := distscroll.PhoneMenu()
	var buf strings.Builder
	if err := distscroll.MenuToJSON(&buf, orig); err != nil {
		t.Fatalf("MenuToJSON: %v", err)
	}
	back, err := distscroll.MenuFromJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("MenuFromJSON: %v", err)
	}
	dev := newTestDevice(t, distscroll.WithMenu(back))
	entries := dev.Entries()
	if len(entries) != 6 || entries[0] != "Messages" {
		t.Fatalf("entries after round trip: %v", entries)
	}
	if err := distscroll.MenuToJSON(&buf, nil); err == nil {
		t.Fatal("nil menu accepted")
	}
}

func TestDualSensorOption(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(10), distscroll.WithDualSensor())
	d, err := dev.DistanceForEntry(6)
	if err != nil {
		t.Fatalf("DistanceForEntry: %v", err)
	}
	dev.SetDistance(d)
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if dev.Cursor() != 6 {
		t.Fatalf("cursor = %d, want 6", dev.Cursor())
	}
}

func TestContextSensingOption(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(5), distscroll.WithContextSensing(true))
	// Right-hand reading grip.
	dev.SetOrientation(0.6, -0.25)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := dev.Context(); !strings.Contains(got, "held/right") {
		t.Fatalf("context = %q", got)
	}
	// Switch to a left-handed grip: the context follows.
	dev.SetOrientation(0.6, 0.3)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := dev.Context(); !strings.Contains(got, "left") {
		t.Fatalf("context after regrip = %q", got)
	}
}

func TestRadioLinkDeliversUnderLoss(t *testing.T) {
	dev := newTestDevice(t,
		distscroll.WithEntries(20),
		distscroll.WithRadioLink(0.1, 10*time.Millisecond),
	)
	dev.SetDistance(28)
	if err := dev.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dev.GlideTo(5, 2*time.Second)
	if err := dev.Run(4 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sent, delivered, lost := dev.LinkStats()
	if sent == 0 {
		t.Fatal("no frames sent")
	}
	if delivered == 0 {
		t.Fatal("no frames delivered despite 90% success rate")
	}
	if lost == 0 {
		t.Fatal("expected some loss at 10% loss probability")
	}
	if delivered+lost > sent {
		t.Fatalf("accounting: delivered %d + lost %d > sent %d", delivered, lost, sent)
	}
}
