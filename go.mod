module github.com/hcilab/distscroll

go 1.22
