package distscroll_test

// One benchmark per paper artefact (DESIGN.md Section 4). Each BenchmarkF*/
// BenchmarkE*/BenchmarkA* target re-runs the corresponding experiment —
// including its internal shape assertions — and reports its headline
// metrics; the A4 target measures the firmware hot loop itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/experiments"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/ops"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// benchExperiment runs one registered experiment per iteration and reports
// the selected metrics.
func benchExperiment(b *testing.B, id string, report ...string) {
	b.Helper()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(uint64(i) + 1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = rep
	}
	for _, m := range report {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig1MenuScroll(b *testing.B) {
	benchExperiment(b, "F1", "scroll_events_host", "final_cursor")
}

func BenchmarkFig2Architecture(b *testing.B) {
	benchExperiment(b, "F2", "rf_delivered", "adc_samples")
}

func BenchmarkFig3Inventory(b *testing.B) {
	benchExperiment(b, "F3", "total_draw_ma", "battery_life_hour")
}

func BenchmarkFig4SensorCurve(b *testing.B) {
	benchExperiment(b, "F4", "fit_r2", "fit_a", "fit_b")
}

func BenchmarkFig5LogFit(b *testing.B) {
	benchExperiment(b, "F5", "loglog_r2", "loglog_slope")
}

func BenchmarkE1IslandMapping(b *testing.B) {
	benchExperiment(b, "E1", "flicker_no_hysteresis", "flicker_with_hysteresis")
}

func BenchmarkE2UserStudy(b *testing.B) {
	benchExperiment(b, "E2", "error_rate_block1", "error_rate_block4", "mean_trial_s")
}

func BenchmarkE3FittsComparison(b *testing.B) {
	benchExperiment(b, "E3",
		"mt_distscroll_bare", "mt_stylus_bare",
		"mt_distscroll_winter", "mt_stylus_winter")
}

func BenchmarkE4RangeSweep(b *testing.B) {
	benchExperiment(b, "E4", "best_far_cm")
}

func BenchmarkE5Direction(b *testing.B) {
	benchExperiment(b, "E5", "mean_s_towards=down", "mean_s_towards=up")
}

func BenchmarkE6LongMenus(b *testing.B) {
	benchExperiment(b, "E6", "mean_s_flat-100", "mean_s_chunked-10", "mean_s_sdaz")
}

func BenchmarkE7HybridInput(b *testing.B) {
	benchExperiment(b, "E7", "hybrid_d32", "distance-only_d32", "buttons-only_d32")
}

func BenchmarkE8ButtonLayouts(b *testing.B) {
	benchExperiment(b, "E8", "prototype-3button_left", "slidable-2button_left")
}

func BenchmarkE9GloveStudy(b *testing.B) {
	benchExperiment(b, "E9", "winter_vs_bare_ratio", "mean_s_bare", "mean_s_winter")
}

func BenchmarkA1Filtering(b *testing.B) {
	benchExperiment(b, "A1", "changes_raw", "changes_median3+ema")
}

func BenchmarkA2IslandGaps(b *testing.B) {
	benchExperiment(b, "A2", "err_gap0.0", "err_gap0.4")
}

func BenchmarkA3RFLink(b *testing.B) {
	benchExperiment(b, "A3", "latency_ms_loss0.00", "latency_ms_loss0.20")
}

func BenchmarkA5PowerSave(b *testing.B) {
	benchExperiment(b, "A5", "duty_power-save", "battery_h_power-save", "battery_h_always-on")
}

func BenchmarkA6InputMode(b *testing.B) {
	benchExperiment(b, "A6", "flicker_absolute_n200", "flicker_relative_n200")
}

// BenchmarkA4FirmwareLoop measures one firmware cycle — ADC sample, filter,
// island map, display write-skip check, button scan, telemetry — the loop
// an 8-bit PIC at 10 MIPS must sustain at 25 Hz.
func BenchmarkA4FirmwareLoop(b *testing.B) {
	board, err := smartits.Assemble(smartits.DefaultConfig(), sim.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(10))
	if err != nil {
		b.Fatal(err)
	}
	fw, err := firmware.New(firmware.DefaultConfig(), board, m, nil)
	if err != nil {
		b.Fatal(err)
	}
	board.SetDistance(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fw.Step(time.Duration(i) * 40 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4SensorSample isolates the analog front end: one noisy sensor
// sample through the 10-bit ADC.
func BenchmarkA4SensorSample(b *testing.B) {
	board, err := smartits.Assemble(smartits.DefaultConfig(), sim.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	board.SetDistance(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := board.ADC.Read(smartits.ChanDistance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4IslandMap isolates the mapper: one voltage-to-entry lookup
// with hysteresis.
func BenchmarkA4IslandMap(b *testing.B) {
	sensor := gp2d120.Default(nil)
	m, err := mapping.New(mapping.DefaultConfig(20), sensor.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	v := sensor.Ideal(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Map(v)
	}
}

// BenchmarkHubDemux measures the host hub's receive path: decode one
// versioned frame and route it to the right per-device session, round-robin
// across a 64-device fleet.
func BenchmarkHubDemux(b *testing.B) {
	const devices = 64
	hub := core.NewHub(false)
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = payload
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Handle(frames[i%devices], time.Duration(i)*time.Millisecond)
	}
	b.StopTimer()
	st := hub.Stats()
	if st.BadFrames != 0 || st.Decoded == 0 {
		b.Fatalf("hub stats: %+v", st)
	}
	b.ReportMetric(float64(st.Devices), "devices")
}

// BenchmarkHubDemuxInstrumented is BenchmarkHubDemux with a telemetry
// registry attached: every frame additionally lands in a per-device
// end-to-end latency histogram. Compare the two to see the observability
// tax on the hot path; the design budget is <10% (run both with
// `go test -bench 'HubDemux' .`, or `distscroll-bench -bench-csv` for a
// machine-readable comparison).
func BenchmarkHubDemuxInstrumented(b *testing.B) {
	const devices = 64
	reg := telemetry.New()
	hub := core.NewHubWithMetrics(false, reg)
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = payload
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Handle(frames[i%devices], time.Duration(i)*time.Millisecond)
	}
	b.StopTimer()
	s := reg.Snapshot()
	lat, ok := s.Histogram(telemetry.MetricHubE2ELatency)
	if !ok || lat.Count != uint64(b.N) {
		b.Fatalf("latency observations %d, want %d", lat.Count, b.N)
	}
	b.ReportMetric(lat.P50, "p50ms")
}

// BenchmarkHubDemuxTraced is BenchmarkHubDemux with a flight recorder
// attached: every frame additionally records one hub.demux span event into
// the per-device bounded ring. The design budget is ≤5% over plain and
// 0 allocs/op — the ring is pre-sized, so the trace is one masked store.
// The CI bench gate compares this against BenchmarkHubDemux.
//
// Ring sizing matters here: the recorder rings share the cache with the
// demux working set, so a 64-device fleet wants small per-device rings
// (24 B/event — a 4096-event ring per device is 6 MB of round-robin
// writes and shows up as pure cache-miss overhead). 128 events/device is
// 4× the post-mortem dump window and keeps the whole trace footprint
// under 200 KB; see DESIGN.md §10 for the sizing guidance.
func BenchmarkHubDemuxTraced(b *testing.B) {
	const devices = 64
	hub := core.NewHub(false)
	tracer := tracing.New(tracing.Config{Capacity: 128, Bounded: true})
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = payload
		id := uint32(i + 1)
		hub.Session(id).AttachTracer(tracer.NewRecorder("bench", id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Handle(frames[i%devices], time.Duration(i)*time.Millisecond)
	}
	b.StopTimer()
	var recorded uint64
	for _, rec := range tracer.Recorders() {
		recorded += rec.Total()
	}
	if recorded != uint64(b.N) {
		b.Fatalf("recorded %d span events, want %d", recorded, b.N)
	}
}

// BenchmarkHubDemuxParallel measures the hub demux path under concurrency:
// 64 goroutines — one per simulated device — hammer Handle with their own
// device's frames, the access pattern a fleet run produces. Before the hub
// table went read-mostly every call serialised on one global mutex; now the
// steady state is a lock-free table load plus the device's own session
// state, which takes no lock at all on the unreliable, uninstrumented path.
func BenchmarkHubDemuxParallel(b *testing.B) {
	const devices = 64
	hub := core.NewHub(false)
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = payload
		hub.Session(uint32(i + 1)) // pre-register: measure demux, not creation
	}
	if gm := runtime.GOMAXPROCS(0); gm < devices {
		// One runnable context per device even on small machines, so lock
		// convoys (a preempted mutex holder blocking 63 peers) are visible.
		b.SetParallelism((devices + gm - 1) / gm)
	}
	var next atomic.Uint32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1)
		frame := frames[(id-1)%devices]
		at := time.Duration(id) * time.Millisecond
		for pb.Next() {
			hub.Handle(frame, at)
		}
	})
	b.StopTimer()
	if st := hub.Stats(); st.BadFrames != 0 || st.Decoded != uint64(b.N) {
		b.Fatalf("hub stats: %+v, want %d decoded", st, b.N)
	}
}

// BenchmarkFleetScroll runs a full 16-device fleet — sensors, firmware,
// lossy radios and the shared hub — through the scripted menu workload per
// iteration and reports the simulated decode throughput.
func BenchmarkFleetScroll(b *testing.B) {
	var tot fleet.Totals
	for i := 0; i < b.N; i++ {
		r, err := fleet.New(fleet.Config{Devices: 16, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		results, err := r.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		tot = r.Total(results)
	}
	b.ReportMetric(tot.FramesPerSecond, "vframes/s")
	b.ReportMetric(float64(tot.Events), "events")
}

// BenchmarkA4RFCodec isolates the link codec: encode one telemetry message
// into a frame and decode it back.
func BenchmarkA4RFCodec(b *testing.B) {
	msg := rf.Message{Kind: rf.MsgScroll, Seq: 7, AtMillis: 1234, Index: 3}
	payload, err := msg.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	dec := rf.NewDecoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := rf.Encode(payload)
		if err != nil {
			b.Fatal(err)
		}
		if got := dec.Feed(frame); len(got) != 1 {
			b.Fatal("frame lost")
		}
	}
}

// BenchmarkFrameRoundTrip is the zero-allocation pipeline end to end:
// marshal a telemetry message into a reusable payload buffer
// (Message.AppendBinary), frame it into a reusable frame buffer
// (AppendEncode), and decode it back through the callback path
// (Decoder.FeedFunc). This is the per-frame work a device and host pay at
// steady state; run with -benchmem, the allocs/op column must read 0.
func BenchmarkFrameRoundTrip(b *testing.B) {
	msg := rf.Message{Device: 9, Kind: rf.MsgScroll, Seq: 7, AtMillis: 1234, Index: 3}
	dec := rf.NewDecoder()
	payload := make([]byte, 0, 64)
	frame := make([]byte, 0, 64)
	delivered := 0
	sink := func(p []byte) { delivered++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint16(i)
		payload = msg.AppendBinary(payload[:0])
		var err error
		frame, err = rf.AppendEncode(frame[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
		dec.FeedFunc(frame, sink)
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d frames, want %d", delivered, b.N)
	}
}

// BenchmarkHubnetIngest measures the networked hub's server-side hot path:
// a prebuilt byte stream of framed v1 messages from 64 devices pushed
// through one stream ingest into a 4-shard gateway — stream decode, CRC
// check, message decode and shard routing, no socket. Reported per frame;
// steady state must stay allocation-free (the FeedFunc decode path plus
// already-created sessions).
func BenchmarkHubnetIngest(b *testing.B) {
	const devices, rounds = 64, 8
	gw := hubnet.NewGateway(hubnet.Config{Shards: 4})
	var stream []byte
	payload := make([]byte, 0, 64)
	for seq := 0; seq < rounds; seq++ {
		for dev := uint32(1); dev <= devices; dev++ {
			msg := rf.Message{Device: dev, Kind: rf.MsgScroll, Seq: uint16(seq), AtMillis: uint32(seq) * 40}
			payload = msg.AppendBinary(payload[:0])
			var err error
			stream, err = rf.AppendEncode(stream, payload)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	in := gw.NewIngest(nil)
	in.Feed(stream) // warm-up: create every session before timing
	frames := uint64(devices * rounds)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Feed(stream)
	}
	b.StopTimer()
	ns := gw.NetStats()
	if ns.Frames != frames*uint64(b.N+1) || ns.BadFrames != 0 {
		b.Fatalf("ingested %d frames (%d bad), want %d", ns.Frames, ns.BadFrames, frames*uint64(b.N+1))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames*uint64(b.N)), "ns/frame")
}

// BenchmarkHubnetSaturate is the ingest saturation grid: prebuilt byte
// streams from `conns` concurrent feeders (each its own goroutine, its own
// Ingest, disjoint device sets — exactly what serveConn does minus the
// socket) pushed into a 4-shard gateway, with the ring pipeline off
// (direct synchronous consume, the PR-8 shape) and on (batched hand-off to
// single-writer shard workers). Reported per frame across all conns;
// steady state must stay allocation-free in both modes. The committed
// BENCH_6.json curve extends this grid with a live PR-8 replica baseline —
// `distscroll-bench -saturate` regenerates it.
func BenchmarkHubnetSaturate(b *testing.B) {
	const devices, rounds, shards = 64, 8, 4
	for _, pipelined := range []bool{false, true} {
		mode := "direct"
		if pipelined {
			mode = "pipeline"
		}
		for _, conns := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/conns=%d", mode, conns), func(b *testing.B) {
				gw := hubnet.NewGateway(hubnet.Config{Shards: shards, Pipeline: pipelined})
				defer gw.Close()
				// Per-conn streams over disjoint device ranges, one frame
				// per device per round, seq counting up.
				streams := make([][]byte, conns)
				payload := make([]byte, 0, 64)
				for c := range streams {
					for seq := 0; seq < rounds; seq++ {
						for d := 0; d < devices/conns; d++ {
							dev := uint32(1 + c*(devices/conns) + d)
							msg := rf.Message{Device: dev, Kind: rf.MsgScroll, Seq: uint16(seq), AtMillis: uint32(seq) * 40}
							payload = msg.AppendBinary(payload[:0])
							var err error
							streams[c], err = rf.AppendEncode(streams[c], payload)
							if err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				// Long-lived feeder goroutines driven by channel tokens, so
				// the timed loop measures ingest, not goroutine spawning,
				// and the steady state stays allocation-free.
				ins := make([]*hubnet.Ingest, conns)
				total := 0
				starts := make([]chan struct{}, conns)
				fed := make(chan struct{}, conns)
				for c := range ins {
					ins[c] = gw.NewIngest(nil)
					ins[c].Feed(streams[c]) // warm-up: sessions + scratch
					total += len(streams[c])
					starts[c] = make(chan struct{})
					go func(c int) {
						for range starts[c] {
							ins[c].Feed(streams[c])
							fed <- struct{}{}
						}
					}(c)
				}
				defer func() {
					for _, ch := range starts {
						close(ch)
					}
				}()
				gw.Drain()
				frames := uint64(devices * rounds)
				b.SetBytes(int64(total))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, ch := range starts {
						ch <- struct{}{}
					}
					for range ins {
						<-fed
					}
					gw.Drain()
				}
				b.StopTimer()
				ns := gw.NetStats()
				want := frames * uint64(b.N+1)
				if ns.Frames != want || ns.BadFrames != 0 || ns.RingDropped != 0 {
					b.Fatalf("ingested %d frames (%d bad, %d dropped), want %d", ns.Frames, ns.BadFrames, ns.RingDropped, want)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames*uint64(b.N)), "ns/frame")
			})
		}
	}
}

// BenchmarkSchedulerWheel measures the timing-wheel scheduler's hot path:
// schedule three events at firmware-tick distances and dispatch them. At
// steady state the slab free list recycles every record; run with
// -benchmem, the allocs/op column must read 0. The CI bench gate pins both
// the latency and the zero-allocation contract.
func BenchmarkSchedulerWheel(b *testing.B) {
	benchEventScheduler(b, sim.NewScheduler(sim.NewClock(0)))
}

// BenchmarkSchedulerHeap is the same workload on the container/heap
// reference scheduler — the "before" of the wheel refactor, measured live
// on the same machine (compare ns/op and allocs/op with SchedulerWheel).
func BenchmarkSchedulerHeap(b *testing.B) {
	benchEventScheduler(b, sim.NewHeapScheduler(sim.NewClock(0)))
}

func benchEventScheduler(b *testing.B, s sim.EventScheduler) {
	fn := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(40*time.Millisecond, fn)
		s.After(41*time.Millisecond, fn)
		s.After(200*time.Millisecond, fn)
		s.Step()
		s.Step()
		s.Step()
	}
}

// BenchmarkFleetScale runs the struct-of-arrays scale path — 10k packed
// devices, one virtual second each, striped across GOMAXPROCS timing
// wheels — and reports the real-time factor. This is the devices-vs-
// throughput figure of merit behind BENCH_5.json at benchmark cadence.
func BenchmarkFleetScale(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunScale(fleet.ScaleConfig{
			Devices:  10_000,
			Seed:     1,
			Duration: time.Second,
			LossProb: 0.01,
		})
		if err != nil {
			b.Fatal(err)
		}
		factor = res.RealTimeFactor
	}
	b.ReportMetric(factor, "rt_factor")
}

// BenchmarkFleetScaleInstrumented is BenchmarkFleetScale with the full ops
// plane attached: a telemetry registry fed by the striped shard collectors,
// an HTTP ops server on a loopback port, and a scraper hitting /metrics at
// roughly 1 Hz while the run is in flight. The tick path stays observation-
// only — worker-local histogram shards, no atomics, no allocations — so the
// design budget over the plain run is ≤5%; the CI bench gate compares the
// two medians.
func BenchmarkFleetScaleInstrumented(b *testing.B) {
	reg := telemetry.New()
	srv, err := ops.Serve("127.0.0.1:0", ops.Config{Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	var scrapes atomic.Uint64
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				resp, err := http.Get(srv.URL() + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					scrapes.Add(1)
				}
			}
		}
	}()
	var factor float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunScale(fleet.ScaleConfig{
			Devices:  10_000,
			Seed:     1,
			Duration: time.Second,
			LossProb: 0.01,
			Metrics:  reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		factor = res.RealTimeFactor
	}
	b.StopTimer()
	close(stop)
	if c := reg.Snapshot().Counters[telemetry.MetricFwCycles]; c == 0 {
		b.Fatal("instrumented run recorded no cycles")
	}
	b.ReportMetric(factor, "rt_factor")
	b.ReportMetric(float64(scrapes.Load()), "scrapes")
}

// BenchmarkFleetScaleHistory is BenchmarkFleetScaleInstrumented with the
// telemetry history sampler attached on top: the store snapshots the
// registry every 250 ms into its preallocated rings while a second scraper
// pulls /api/history at roughly 1 Hz. The sample path allocates nothing at
// steady state, so the design budget over the instrumented run is ≤5%; the
// CI bench gate compares the two medians.
func BenchmarkFleetScaleHistory(b *testing.B) {
	reg := telemetry.New()
	hist, err := history.Start(history.Config{
		Registry: reg,
		Windows:  240,
		Interval: 250 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer hist.Stop()
	srv, err := ops.Serve("127.0.0.1:0", ops.Config{Registry: reg, History: hist})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	var scrapes atomic.Uint64
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, path := range []string{"/metrics", "/api/history?k=60"} {
					resp, err := http.Get(srv.URL() + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
						scrapes.Add(1)
					}
				}
			}
		}
	}()
	var factor float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunScale(fleet.ScaleConfig{
			Devices:  10_000,
			Seed:     1,
			Duration: time.Second,
			LossProb: 0.01,
			Metrics:  reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		factor = res.RealTimeFactor
	}
	b.StopTimer()
	close(stop)
	hist.Sample() // at least one captured window even on sub-250ms runs
	if hist.Captured() == 0 {
		b.Fatal("history sampler captured nothing")
	}
	if c := reg.Snapshot().Counters[telemetry.MetricFwCycles]; c == 0 {
		b.Fatal("instrumented run recorded no cycles")
	}
	b.ReportMetric(factor, "rt_factor")
	b.ReportMetric(float64(scrapes.Load()), "scrapes")
	b.ReportMetric(float64(hist.Captured()), "windows")
}
