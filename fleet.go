package distscroll

import (
	"errors"
	"fmt"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// Fleet is a population of simulated DistScroll devices served by one
// host-side hub — the paper's wireless device-to-PC link (Section 3.2)
// scaled out. Every device is built from the same option set, gets its own
// derived seed and wire id, and runs the same scripted menu workload on its
// own virtual clock; RunAll simulates them concurrently.
//
//	f, err := distscroll.NewFleet(64, distscroll.WithEntries(12))
//	if err != nil { ... }
//	f.OnScroll(func(device int, e distscroll.Event) { ... })
//	report, err := f.RunAll()
//	fmt.Println(report.Frames, report.Lost)
type Fleet struct {
	runner  *fleet.Runner
	metrics *telemetry.Registry
	tracing *Tracing
	ops     *opsState

	onScroll func(device int, e Event)
	onSelect func(device int, e Event)
	onLevel  func(device int, e Event)
}

// NewFleet assembles n devices from the given options. The options are the
// same ones New accepts; WithSeed seeds the whole fleet (each device
// derives an independent stream from it) and WithDeviceID is ignored —
// fleet devices are numbered 1..n on the wire.
func NewFleet(n int, opts ...Option) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("distscroll: fleet needs at least 1 device, got %d", n)
	}
	cfg := config{core: core.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.root == nil {
		return nil, errors.New("distscroll: a menu is required (WithMenu or WithEntries)")
	}
	if (cfg.opsAddr != "" || cfg.slo != nil || cfg.history != nil) && cfg.core.Metrics == nil {
		// The ops plane implies telemetry: scrape targets and SLO rules
		// both read the registry.
		cfg.core.Metrics = telemetry.New()
	}
	var hub fleet.HubBackend
	if cfg.hubShards > 0 {
		// The loopback gateway stands in for the in-process hub: same
		// sessions, same telemetry registry, same retained event logs for
		// handler replay — plus the networked path's framing, stream
		// decode and shard routing in between.
		hub = hubnet.NewLoopback(hubnet.Config{
			Shards:   cfg.hubShards,
			KeepLogs: true,
			Registry: cfg.core.Metrics,
		})
	}
	runner, err := fleet.New(fleet.Config{
		Devices:  n,
		Seed:     cfg.core.Seed,
		Core:     cfg.core,
		Menu:     func() *menu.Node { return cfg.root.toNode() },
		Metrics:  cfg.core.Metrics,
		Reliable: cfg.core.Reliable,
		ARQ:      cfg.core.ARQ,
		Tracing:  cfg.core.Tracing,
		Hub:      hub,
	})
	if err != nil {
		return nil, err
	}
	f := &Fleet{runner: runner, metrics: cfg.core.Metrics}
	if cfg.core.Tracing != nil {
		f.tracing = &Tracing{tracer: cfg.core.Tracing}
	}
	if cfg.opsAddr != "" || cfg.slo != nil || cfg.history != nil {
		st, err := startOps(&cfg, f.metrics)
		if err != nil {
			return nil, err
		}
		f.ops = st
	}
	return f, nil
}

// Size returns the number of devices in the fleet.
func (f *Fleet) Size() int { return f.runner.Len() }

// OnScroll registers the fleet-wide scroll handler; device is the 0-based
// device index.
func (f *Fleet) OnScroll(fn func(device int, e Event)) { f.onScroll = fn }

// OnSelect registers the selection handler.
func (f *Fleet) OnSelect(fn func(device int, e Event)) { f.onSelect = fn }

// OnLevel registers the level-change handler.
func (f *Fleet) OnLevel(fn func(device int, e Event)) { f.onLevel = fn }

// DeviceReport is one device's outcome of a fleet run.
type DeviceReport struct {
	// Device is the 0-based device index (wire id minus one).
	Device int
	// FinalCursor is the menu cursor when the workload finished.
	FinalCursor int
	// Events counts decoded telemetry events attributed to this device.
	Events uint64
	// MissedFrames counts sequence gaps, i.e. frames lost on air.
	MissedFrames uint64
	// Sent and Delivered are the device's link-level counters.
	Sent, Delivered uint64
	// Retransmits counts extra ARQ transmissions; zero without
	// WithReliableDelivery.
	Retransmits uint64
	// Err is the device's first error, nil on success.
	Err error
}

// FleetReport aggregates a fleet run.
type FleetReport struct {
	// Devices holds the per-device outcomes in device order.
	Devices []DeviceReport
	// Frames, Delivered, Lost and Corrupted sum the link-level counters;
	// every sent frame is delivered, lost on air, or corrupted in transit.
	Frames, Delivered, Lost, Corrupted uint64
	// Events and MissedFrames sum the hub-side accounting.
	Events, MissedFrames uint64
	// Retransmits, Timeouts, QueueDrops, AcksSent, AcksLost and Resyncs
	// sum the reliable-delivery counters; all zero without
	// WithReliableDelivery.
	Retransmits, Timeouts, QueueDrops uint64
	AcksSent, AcksLost, Resyncs       uint64
	// VirtualSeconds is the summed simulated time across devices;
	// FramesPerSecond the aggregate decode throughput against it.
	VirtualSeconds  float64
	FramesPerSecond float64
	// Telemetry is the end-of-run metrics snapshot, nil unless the fleet
	// was built with WithMetrics.
	Telemetry *MetricsSnapshot
	// TraceExport is the causal-trace export handle, nil unless the fleet
	// was built with WithTracing. The run has quiesced by the time the
	// report exists, so WritePerfetto / WriteText see every recorded span.
	TraceExport *Tracing
}

// RunAll simulates every device through the scripted menu workload
// concurrently and returns the aggregate report. After the concurrent run
// completes, each device's retained event stream is replayed through the
// registered handlers in device order, so handler invocations are
// deterministic given the fleet seed.
func (f *Fleet) RunAll() (FleetReport, error) {
	f.beginRun()
	results, runErr := f.runner.RunAll()
	f.endRun()
	f.replay()

	var rep FleetReport
	for i, res := range results {
		rep.Devices = append(rep.Devices, DeviceReport{
			Device:       i,
			FinalCursor:  res.FinalCursor,
			Events:       res.Host.Events,
			MissedFrames: res.Host.MissedSeq,
			Sent:         res.Link.Sent,
			Delivered:    res.Link.Delivered,
			Retransmits:  res.ARQ.Retransmits,
			Err:          res.Err,
		})
	}
	tot := f.runner.Total(results)
	rep.Frames = tot.Sent
	rep.Delivered = tot.Delivered
	rep.Lost = tot.Lost
	rep.Corrupted = tot.Corrupted
	rep.Events = tot.Events
	rep.MissedFrames = tot.MissedSeq
	rep.Retransmits = tot.Retransmits
	rep.Timeouts = tot.Timeouts
	rep.QueueDrops = tot.QueueDrops
	rep.AcksSent = tot.AcksSent
	rep.AcksLost = tot.AcksLost
	rep.Resyncs = tot.Resyncs
	rep.VirtualSeconds = tot.VirtualSeconds
	rep.FramesPerSecond = tot.FramesPerSecond
	if f.metrics != nil {
		rep.Telemetry = f.metrics.Snapshot()
	}
	rep.TraceExport = f.tracing
	return rep, runErr
}

// replay dispatches the retained per-device event logs to the handlers.
func (f *Fleet) replay() {
	if f.onScroll == nil && f.onSelect == nil && f.onLevel == nil {
		return
	}
	for i := 0; i < f.runner.Len(); i++ {
		dev := f.runner.Device(i)
		lookup := func(index int) string {
			entries := dev.Menu.Entries()
			if index < 0 || index >= len(entries) {
				return ""
			}
			return entries[index].Title
		}
		for _, e := range f.runner.Session(i).Events() {
			var kind EventKind
			var handler func(int, Event)
			switch e.Kind {
			case rf.MsgScroll:
				kind, handler = EventScroll, f.onScroll
			case rf.MsgSelect:
				kind, handler = EventSelect, f.onSelect
			case rf.MsgLevel:
				kind, handler = EventLevel, f.onLevel
			default:
				continue
			}
			if handler == nil {
				continue
			}
			ev := Event{Kind: kind, Index: e.Index, At: e.HostTime}
			if kind != EventLevel {
				ev.Entry = lookup(e.Index)
			}
			handler(i, ev)
		}
	}
}
