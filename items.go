package distscroll

import (
	"io"

	"github.com/hcilab/distscroll/internal/menu"
)

// Item is one entry of the hierarchical structure a Device navigates.
// Build trees with NewItem/NewLeaf or use the bundled fixtures.
type Item struct {
	// Title is the text shown on the device display.
	Title string
	// Children are the sub-entries; a childless item is selectable.
	Children []*Item
	// OnSelect, when set on a leaf, runs when the entry is selected.
	OnSelect func()
}

// NewItem returns an item with children.
func NewItem(title string, children ...*Item) *Item {
	return &Item{Title: title, Children: children}
}

// NewLeaf returns a selectable leaf item.
func NewLeaf(title string, onSelect func()) *Item {
	return &Item{Title: title, OnSelect: onSelect}
}

// toNode converts the public tree into the internal menu representation.
func (it *Item) toNode() *menu.Node {
	n := menu.NewNode(it.Title)
	n.Action = it.OnSelect
	for _, c := range it.Children {
		n.AddChild(c.toNode())
	}
	return n
}

// fromNode converts an internal fixture into the public representation.
func fromNode(n *menu.Node) *Item {
	it := &Item{Title: n.Title}
	for _, c := range n.Children {
		it.Children = append(it.Children, fromNode(c))
	}
	return it
}

// PhoneMenu returns the fictive mobile-phone menu from the paper's initial
// user study.
func PhoneMenu() *Item { return fromNode(menu.PhoneMenu()) }

// LabProtocolMenu returns the hazardous-laboratory scenario menu.
func LabProtocolMenu() *Item { return fromNode(menu.LabProtocolMenu()) }

// StocktakingMenu returns the warehouse stocktaking scenario menu.
func StocktakingMenu() *Item { return fromNode(menu.StocktakingMenu()) }

// NumberedList returns a flat list of n numbered entries.
func NumberedList(n int) *Item { return fromNode(menu.FlatMenu(n)) }

// MenuFromJSON parses a menu tree from JSON:
//
//	{"title": "Root", "children": [{"title": "Entry"}, ...]}
func MenuFromJSON(r io.Reader) (*Item, error) {
	n, err := menu.FromJSON(r)
	if err != nil {
		return nil, err
	}
	return fromNode(n), nil
}

// MenuToJSON writes an item tree as indented JSON (the MenuFromJSON
// schema).
func MenuToJSON(w io.Writer, root *Item) error {
	if root == nil {
		return menu.ToJSON(w, nil)
	}
	return menu.ToJSON(w, root.toNode())
}
