package distscroll_test

import (
	"testing"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

func TestWithScrollRange(t *testing.T) {
	dev := newTestDevice(t,
		distscroll.WithEntries(10),
		distscroll.WithScrollRange(6, 20),
	)
	first, err := dev.DistanceForEntry(9) // nearest under towards=down
	if err != nil {
		t.Fatal(err)
	}
	last, err := dev.DistanceForEntry(0)
	if err != nil {
		t.Fatal(err)
	}
	if first != 6 || last != 20 {
		t.Fatalf("range endpoints: %.1f .. %.1f, want 6 .. 20", first, last)
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithScrollRange(20, 6),
	); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithScrollRange(-1, 10),
	); err == nil {
		t.Fatal("negative near accepted")
	}
}

func TestWithGapFraction(t *testing.T) {
	dev := newTestDevice(t,
		distscroll.WithEntries(5),
		distscroll.WithGapFraction(0),
	)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithGapFraction(1),
	); err == nil {
		t.Fatal("gap 1 accepted")
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithGapFraction(-0.1),
	); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestWithSamplePeriod(t *testing.T) {
	// A 10 ms loop produces ~4x the cycles of the default 40 ms loop.
	fast := newTestDevice(t,
		distscroll.WithEntries(5),
		distscroll.WithSamplePeriod(10*time.Millisecond),
	)
	if err := fast.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if cycles := fast.Internal().Firmware.Stats().Cycles; cycles < 90 {
		t.Fatalf("fast loop cycles = %d", cycles)
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithSamplePeriod(0),
	); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestWithFilterNames(t *testing.T) {
	for _, name := range []string{"raw", "median3", "ema", "median3+ema", ""} {
		dev := newTestDevice(t, distscroll.WithEntries(5), distscroll.WithFilter(name))
		if err := dev.Run(200 * time.Millisecond); err != nil {
			t.Fatalf("filter %q: %v", name, err)
		}
	}
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithFilter("kalman"),
	); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestWithoutRadio(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(5), distscroll.WithoutRadio())
	dev.SetDistance(10)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	sent, delivered, lost := dev.LinkStats()
	if sent+delivered+lost != 0 {
		t.Fatalf("radio-less device has link stats %d/%d/%d", sent, delivered, lost)
	}
	if dev.Distance() != 10 {
		t.Fatalf("distance %v", dev.Distance())
	}
}

func TestWithRadioLinkValidation(t *testing.T) {
	if _, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithRadioLink(1.5, time.Millisecond),
	); err == nil {
		t.Fatal("loss > 1 accepted")
	}
}

func TestScenarioMenuFixtures(t *testing.T) {
	for name, root := range map[string]*distscroll.Item{
		"lab":   distscroll.LabProtocolMenu(),
		"stock": distscroll.StocktakingMenu(),
	} {
		dev := newTestDevice(t, distscroll.WithMenu(root))
		if err := dev.Run(500 * time.Millisecond); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dev.Entries()) < 3 {
			t.Fatalf("%s fixture has %d entries", name, len(dev.Entries()))
		}
	}
}

func TestWithPowerSave(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(8), distscroll.WithPowerSave(0))
	// Hold still: the firmware idles and the cycle rate drops.
	dev.SetDistance(15)
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fw := dev.Internal().Firmware
	if !fw.Idle() {
		t.Fatal("not idle after 10 s of stillness")
	}
	// 10 s at 25 Hz would be 250 cycles; idling must cut that hard.
	if cycles := fw.Stats().Cycles; cycles > 150 {
		t.Fatalf("cycles = %d, power save ineffective", cycles)
	}
	// Interaction still works: move to an entry and check the cursor.
	d, err := dev.DistanceForEntry(6)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(d)
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dev.Cursor() != 6 {
		t.Fatalf("cursor = %d after wake", dev.Cursor())
	}
	if fw.Idle() {
		t.Fatal("still idle after interaction")
	}
	if _, err := distscroll.New(distscroll.WithEntries(5), distscroll.WithPowerSave(-time.Second)); err == nil {
		t.Fatal("negative idle threshold accepted")
	}
}

func TestWithRelativeScrolling(t *testing.T) {
	dev := newTestDevice(t, distscroll.WithEntries(300), distscroll.WithRelativeScrolling())
	dev.SetDistance(26)
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := dev.Cursor()
	dev.GlideTo(8, 800*time.Millisecond)
	if err := dev.Run(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if dev.Cursor() <= before {
		t.Fatalf("relative scrolling did not advance: %d -> %d", before, dev.Cursor())
	}
	// 300 entries is far beyond what absolute islands could resolve (the
	// mapper would still be built, but relative mode ignores it).
	if dev.Cursor() >= 300 {
		t.Fatalf("cursor out of bounds: %d", dev.Cursor())
	}
}

func TestWithEntriesValidation(t *testing.T) {
	if _, err := distscroll.New(distscroll.WithEntries(1)); err == nil {
		t.Fatal("single-entry list accepted")
	}
}
