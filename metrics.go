package distscroll

import (
	"errors"
	"io"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// MetricsSnapshot is a point-in-time copy of every counter, gauge and
// histogram a run has recorded: per-layer frame counters (firmware, rf
// link, hub), the per-device and aggregate end-to-end latency histograms
// with p50/p90/p99, and hub-level gauges. It marshals to JSON.
type MetricsSnapshot = telemetry.Snapshot

// HistogramSnapshot is one latency distribution inside a MetricsSnapshot.
type HistogramSnapshot = telemetry.HistogramSnapshot

// Metrics collects telemetry from every layer of one or more devices.
// Attach it with WithMetrics; the same handle may instrument a whole
// fleet. Collection is pull-based: the simulation pays (almost) nothing
// until Snapshot is called, and recorded behaviour is identical with or
// without metrics attached.
type Metrics struct {
	reg *telemetry.Registry
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics { return &Metrics{reg: telemetry.New()} }

// Snapshot captures the current state of every instrument.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return telemetry.NewSnapshot()
	}
	return m.reg.Snapshot()
}

// WriteJSON writes the current snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return m.Snapshot().WriteJSON(w)
}

// WritePrometheus writes the current snapshot in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return m.Snapshot().WritePrometheus(w)
}

// WithMetrics instruments the device (or every device of a fleet) with the
// given collector: firmware cycle/event counters, RF link loss accounting
// and host-side receive counters plus an end-to-end latency histogram per
// device.
func WithMetrics(m *Metrics) Option {
	return func(c *config) error {
		if m == nil {
			return errors.New("distscroll: nil metrics (use NewMetrics)")
		}
		c.core.Metrics = m.reg
		return nil
	}
}
