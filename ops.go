package distscroll

import (
	"errors"
	"time"

	"github.com/hcilab/distscroll/internal/ops"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// SLO declares the service-level objectives an observed fleet run must
// hold. Rules are evaluated over windowed telemetry deltas on a wall-clock
// loop, so a long healthy history cannot mask a current outage. Zero
// values disable their rule.
type SLO struct {
	// LatencyP99 breaches when the end-to-end latency p99 of a window
	// exceeds it.
	LatencyP99 time.Duration
	// MinFramesPerSec breaches when decoded frames per wall-clock second
	// drop below this floor (drain detection).
	MinFramesPerSec float64
	// StallAfter breaches when the hub decodes nothing for this long (the
	// stuck-clock detector).
	StallAfter time.Duration
	// Interval is the evaluation period (default 1 s).
	Interval time.Duration
}

// configured reports whether any rule is active.
func (s SLO) configured() bool {
	return s.LatencyP99 > 0 || s.MinFramesPerSec > 0 || s.StallAfter > 0
}

// SLOBreach is one recorded objective violation; see SLOBreaches.
type SLOBreach = ops.Breach

// WithOpsServer serves the live ops plane — GET /metrics (Prometheus),
// /vars (JSON), /healthz, /debug/pprof — on addr (host:port; port 0 picks
// a free one, see Fleet.OpsURL) for the lifetime of the fleet. Telemetry
// is implied: a registry is created automatically unless WithMetrics
// supplied one. Fleet-only; New rejects it.
func WithOpsServer(addr string) Option {
	return func(c *config) error {
		if addr == "" {
			return errors.New("distscroll: empty ops server address")
		}
		c.opsAddr = addr
		return nil
	}
}

// WithSLOWatchdog guards RunAll with the given objectives: breaches latch
// /healthz to 503 (with WithOpsServer), are reported by Fleet.Healthy and
// Fleet.SLOBreaches, and fire a flight-recorder dump when the fleet also
// has WithTracing. Telemetry is implied, as with WithOpsServer.
// Fleet-only; New rejects it.
func WithSLOWatchdog(slo SLO) Option {
	return func(c *config) error {
		if !slo.configured() {
			return errors.New("distscroll: SLO watchdog needs at least one rule (LatencyP99, MinFramesPerSec or StallAfter)")
		}
		c.slo = &slo
		return nil
	}
}

// opsState is the fleet's live ops plane: the HTTP server runs from
// NewFleet until CloseOps; the watchdog runs during RunAll and keeps its
// latched verdict afterwards.
type opsState struct {
	srv      *ops.Server
	slo      *SLO
	watchdog *ops.Watchdog
}

// startOps builds the fleet's ops plane from a parsed config. Called by
// NewFleet after the registry exists.
func startOps(cfg *config, reg *telemetry.Registry) (*opsState, error) {
	st := &opsState{slo: cfg.slo}
	if cfg.opsAddr != "" {
		srv, err := ops.Serve(cfg.opsAddr, ops.Config{Registry: reg})
		if err != nil {
			return nil, err
		}
		st.srv = srv
	}
	return st, nil
}

// beginRun starts the SLO watchdog for one RunAll and points /healthz at
// it.
func (f *Fleet) beginRun() {
	if f.ops == nil || f.ops.slo == nil {
		return
	}
	slo := f.ops.slo
	cfg := ops.WatchdogConfig{
		Registry:        f.metrics,
		Interval:        slo.Interval,
		LatencyMaxP99Ms: float64(slo.LatencyP99) / float64(time.Millisecond),
		StallGauge:      telemetry.MetricHubDecoded,
		StallAfter:      slo.StallAfter,
	}
	if slo.MinFramesPerSec > 0 {
		cfg.MinRate = map[string]float64{telemetry.MetricHubDecoded: slo.MinFramesPerSec}
	}
	if f.tracing != nil {
		cfg.Tracer = f.tracing.tracer
	}
	f.ops.watchdog = ops.StartWatchdog(cfg)
	// Point the running server's /healthz at this run's watchdog.
	f.ops.srv.SetWatchdog(f.ops.watchdog)
}

// endRun stops the watchdog; its latched verdict stays readable.
func (f *Fleet) endRun() {
	if f.ops != nil {
		f.ops.watchdog.Stop()
	}
}

// OpsURL returns the base URL of the ops server ("" without
// WithOpsServer).
func (f *Fleet) OpsURL() string {
	if f.ops == nil {
		return ""
	}
	return f.ops.srv.URL()
}

// CloseOps stops the ops HTTP server and the watchdog. Safe to call
// without WithOpsServer and safe to call twice.
func (f *Fleet) CloseOps() error {
	if f.ops == nil {
		return nil
	}
	f.ops.watchdog.Stop()
	return f.ops.srv.Close()
}

// Healthy reports whether the SLO watchdog has recorded no breaches. A
// fleet without WithSLOWatchdog is always healthy.
func (f *Fleet) Healthy() bool {
	if f.ops == nil {
		return true
	}
	return f.ops.watchdog.Healthy()
}

// SLOBreaches returns the watchdog's recorded breaches in detection order.
func (f *Fleet) SLOBreaches() []SLOBreach {
	if f.ops == nil {
		return nil
	}
	return f.ops.watchdog.Breaches()
}
