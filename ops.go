package distscroll

import (
	"errors"
	"io"
	"time"

	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/ops"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// SLO declares the service-level objectives an observed fleet run must
// hold. Rules are evaluated over windowed telemetry deltas on a wall-clock
// loop, so a long healthy history cannot mask a current outage. Zero
// values disable their rule.
type SLO struct {
	// LatencyP99 breaches when the end-to-end latency p99 of a window
	// exceeds it.
	LatencyP99 time.Duration
	// MinFramesPerSec breaches when decoded frames per wall-clock second
	// drop below this floor (drain detection).
	MinFramesPerSec float64
	// StallAfter breaches when the hub decodes nothing for this long (the
	// stuck-clock detector).
	StallAfter time.Duration
	// Interval is the evaluation period (default 1 s).
	Interval time.Duration
}

// configured reports whether any rule is active.
func (s SLO) configured() bool {
	return s.LatencyP99 > 0 || s.MinFramesPerSec > 0 || s.StallAfter > 0
}

// SLOBreach is one recorded objective violation; see SLOBreaches.
type SLOBreach = ops.Breach

// WithOpsServer serves the live ops plane — GET /metrics (Prometheus),
// /vars (JSON), /healthz, /debug/pprof — on addr (host:port; port 0 picks
// a free one, see Fleet.OpsURL) for the lifetime of the fleet. Telemetry
// is implied: a registry is created automatically unless WithMetrics
// supplied one. Fleet-only; New rejects it.
func WithOpsServer(addr string) Option {
	return func(c *config) error {
		if addr == "" {
			return errors.New("distscroll: empty ops server address")
		}
		c.opsAddr = addr
		return nil
	}
}

// WithSLOWatchdog guards RunAll with the given objectives: breaches latch
// /healthz to 503 (with WithOpsServer), are reported by Fleet.Healthy and
// Fleet.SLOBreaches, and fire a flight-recorder dump when the fleet also
// has WithTracing. Telemetry is implied, as with WithOpsServer.
// Fleet-only; New rejects it.
func WithSLOWatchdog(slo SLO) Option {
	return func(c *config) error {
		if !slo.configured() {
			return errors.New("distscroll: SLO watchdog needs at least one rule (LatencyP99, MinFramesPerSec or StallAfter)")
		}
		c.slo = &slo
		return nil
	}
}

// historyOptions carries WithHistory's parameters until NewFleet builds
// the store.
type historyOptions struct {
	windows  int
	interval time.Duration
}

// WithHistory retains a rolling window of telemetry history: a sampler
// captures the registry every interval and keeps the last `windows`
// samples per series in bounded ring buffers (counters as windowed
// rates, gauges as raw samples, histograms as per-window delta digests).
// With WithOpsServer the history is queryable live at /api/history and
// rendered by the /dash dashboard; with WithSLOWatchdog every breach is
// marked on the timeline and gains a pre/post forensics capture. Zero
// values take the defaults (120 windows, 1 s). Telemetry is implied, as
// with WithOpsServer. Fleet-only; New rejects it.
func WithHistory(windows int, interval time.Duration) Option {
	return func(c *config) error {
		if windows < 0 {
			return errors.New("distscroll: negative history window count")
		}
		if interval < 0 {
			return errors.New("distscroll: negative history interval")
		}
		c.history = &historyOptions{windows: windows, interval: interval}
		return nil
	}
}

// opsState is the fleet's live ops plane: the HTTP server and the
// history sampler run from NewFleet until CloseOps; the watchdog runs
// during RunAll and keeps its latched verdict afterwards.
type opsState struct {
	srv      *ops.Server
	slo      *SLO
	watchdog *ops.Watchdog
	hist     *history.Store
}

// startOps builds the fleet's ops plane from a parsed config. Called by
// NewFleet after the registry exists.
func startOps(cfg *config, reg *telemetry.Registry) (*opsState, error) {
	st := &opsState{slo: cfg.slo}
	if cfg.history != nil {
		hist, err := history.Start(history.Config{
			Registry: reg,
			Windows:  cfg.history.windows,
			Interval: cfg.history.interval,
		})
		if err != nil {
			return nil, err
		}
		st.hist = hist
	}
	if cfg.opsAddr != "" {
		srv, err := ops.Serve(cfg.opsAddr, ops.Config{Registry: reg, History: st.hist})
		if err != nil {
			st.hist.Stop()
			return nil, err
		}
		st.srv = srv
	}
	return st, nil
}

// beginRun starts the SLO watchdog for one RunAll and points /healthz at
// it.
func (f *Fleet) beginRun() {
	if f.ops == nil || f.ops.slo == nil {
		return
	}
	slo := f.ops.slo
	cfg := ops.WatchdogConfig{
		Registry:        f.metrics,
		Interval:        slo.Interval,
		LatencyMaxP99Ms: float64(slo.LatencyP99) / float64(time.Millisecond),
		StallGauge:      telemetry.MetricHubDecoded,
		StallAfter:      slo.StallAfter,
	}
	if slo.MinFramesPerSec > 0 {
		cfg.MinRate = map[string]float64{telemetry.MetricHubDecoded: slo.MinFramesPerSec}
	}
	if f.tracing != nil {
		cfg.Tracer = f.tracing.tracer
	}
	cfg.History = f.ops.hist
	f.ops.watchdog = ops.StartWatchdog(cfg)
	// Point the running server's /healthz at this run's watchdog.
	f.ops.srv.SetWatchdog(f.ops.watchdog)
}

// endRun stops the watchdog; its latched verdict stays readable.
func (f *Fleet) endRun() {
	if f.ops != nil {
		f.ops.watchdog.Stop()
	}
}

// OpsURL returns the base URL of the ops server ("" without
// WithOpsServer).
func (f *Fleet) OpsURL() string {
	if f.ops == nil {
		return ""
	}
	return f.ops.srv.URL()
}

// CloseOps stops the ops HTTP server, the watchdog, and the history
// sampler. Safe to call without WithOpsServer and safe to call twice.
func (f *Fleet) CloseOps() error {
	if f.ops == nil {
		return nil
	}
	f.ops.watchdog.Stop()
	f.ops.hist.Stop()
	return f.ops.srv.Close()
}

// WriteHistory writes the retained telemetry history (the last lastK
// windows; <= 0 means everything retained) as indented JSON — the same
// document /api/history serves. Errors without WithHistory.
func (f *Fleet) WriteHistory(w io.Writer, lastK int) error {
	if f.ops == nil || f.ops.hist == nil {
		return errors.New("distscroll: fleet has no history store (enable WithHistory)")
	}
	return f.ops.hist.WriteJSON(w, history.Query{LastK: lastK})
}

// Healthy reports whether the SLO watchdog has recorded no breaches. A
// fleet without WithSLOWatchdog is always healthy.
func (f *Fleet) Healthy() bool {
	if f.ops == nil {
		return true
	}
	return f.ops.watchdog.Healthy()
}

// SLOBreaches returns the watchdog's recorded breaches in detection order.
func (f *Fleet) SLOBreaches() []SLOBreach {
	if f.ops == nil {
		return nil
	}
	return f.ops.watchdog.Breaches()
}
