package distscroll_test

import (
	"fmt"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

// Example shows the minimal end-to-end flow: build a device, hold it at a
// distance, and read the cursor.
func Example() {
	dev, err := distscroll.New(
		distscroll.WithEntries(10),
		distscroll.WithSeed(1),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dev.Close()

	// Entry 7's island centre is a physical distance; hold the device
	// there and let the 25 Hz firmware loop settle.
	d, err := dev.DistanceForEntry(7)
	if err != nil {
		fmt.Println(err)
		return
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(dev.CurrentEntry())
	// Output: Entry 08
}

// ExampleDevice_OnScroll registers a host-side handler for scroll events
// decoded from the device's RF telemetry.
func ExampleDevice_OnScroll() {
	dev, err := distscroll.New(
		distscroll.WithEntries(5),
		distscroll.WithSeed(1),
		distscroll.WithRadioLink(0, 2*time.Millisecond), // lossless for the doc test
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dev.Close()

	last := -1
	dev.OnScroll(func(e distscroll.Event) { last = e.Index })

	d, err := dev.DistanceForEntry(2)
	if err != nil {
		fmt.Println(err)
		return
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("last scroll event index:", last)
	// Output: last scroll event index: 2
}

// ExampleDevice_PressSelect selects a leaf entry and observes the select
// event with the entry title resolved.
func ExampleDevice_PressSelect() {
	dev, err := distscroll.New(
		distscroll.WithMenu(distscroll.NewItem("Root",
			distscroll.NewLeaf("Tea", nil),
			distscroll.NewLeaf("Coffee", nil),
		)),
		distscroll.WithSeed(1),
		distscroll.WithRadioLink(0, 2*time.Millisecond),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dev.Close()

	dev.OnSelect(func(e distscroll.Event) { fmt.Println("selected:", e.Entry) })

	d, err := dev.DistanceForEntry(1)
	if err != nil {
		fmt.Println(err)
		return
	}
	dev.SetDistance(d)
	if err := dev.Run(time.Second); err != nil {
		fmt.Println(err)
		return
	}
	dev.PressSelect()
	if err := dev.Run(time.Second); err != nil {
		fmt.Println(err)
		return
	}
	// Output: selected: Coffee
}

// ExampleNewItem builds a custom hierarchical structure with a selection
// action on a leaf.
func ExampleNewItem() {
	brewed := false
	menu := distscroll.NewItem("Machine",
		distscroll.NewItem("Drinks",
			distscroll.NewLeaf("Espresso", func() { brewed = true }),
			distscroll.NewLeaf("Lungo", nil),
		),
		distscroll.NewLeaf("Clean", nil),
	)
	dev, err := distscroll.New(distscroll.WithMenu(menu), distscroll.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dev.Close()

	// Enter Drinks (entry 0), then select Espresso (entry 0).
	for i := 0; i < 2; i++ {
		d, err := dev.DistanceForEntry(0)
		if err != nil {
			fmt.Println(err)
			return
		}
		dev.SetDistance(d)
		if err := dev.Run(time.Second); err != nil {
			fmt.Println(err)
			return
		}
		dev.PressSelect()
		if err := dev.Run(time.Second); err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Println("path:", dev.Path())
	fmt.Println("brewed:", brewed)
	// Output:
	// path: Machine > Drinks > Espresso
	// brewed: true
}
