package distscroll_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

// historyDoc mirrors the /api/history JSON document shape for decoding.
type historyDoc struct {
	IntervalSeconds float64                      `json:"intervalSeconds"`
	Capacity        int                          `json:"capacity"`
	Count           uint64                       `json:"count"`
	Times           []int64                      `json:"times"`
	Series          map[string]historySeriesData `json:"series"`
}

type historySeriesData struct {
	Kind   string    `json:"kind"`
	Values []float64 `json:"values,omitempty"`
	Count  []float64 `json:"count,omitempty"`
	P99    []float64 `json:"p99,omitempty"`
}

func TestFleetHistoryServed(t *testing.T) {
	f, err := distscroll.NewFleet(4,
		distscroll.WithEntries(10),
		distscroll.WithSeed(5),
		distscroll.WithOpsServer("127.0.0.1:0"),
		distscroll.WithHistory(32, 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.CloseOps()

	if _, err := f.RunAll(); err != nil {
		t.Fatal(err)
	}

	// The sampler runs on wall clock; give it a few intervals to capture
	// the post-run counters.
	deadline := time.Now().Add(5 * time.Second)
	var doc historyDoc
	for {
		code, body := get(t, f.OpsURL()+"/api/history")
		if code != http.StatusOK {
			t.Fatalf("/api/history = %d:\n%.500s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/api/history not JSON: %v\n%.500s", err, body)
		}
		if doc.Count >= 2 && len(doc.Series) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never captured: count=%d series=%d", doc.Count, len(doc.Series))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if doc.Capacity != 32 {
		t.Fatalf("capacity = %d, want 32", doc.Capacity)
	}
	if doc.IntervalSeconds != 0.005 {
		t.Fatalf("intervalSeconds = %g, want 0.005", doc.IntervalSeconds)
	}
	if _, ok := doc.Series["fw_cycles_total"]; !ok {
		t.Fatalf("history missing fw_cycles_total; have %d series", len(doc.Series))
	}
	if len(doc.Times) == 0 {
		t.Fatal("history has no window timestamps")
	}

	// The dashboard rides along whenever history is on.
	code, body := get(t, f.OpsURL()+"/dash")
	if code != http.StatusOK || !strings.Contains(body, "<svg") {
		t.Fatalf("/dash = %d, svg=%v", code, strings.Contains(body, "<svg"))
	}

	// WriteHistory emits the same document without the server.
	var buf bytes.Buffer
	if err := f.WriteHistory(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var dump historyDoc
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("WriteHistory not JSON: %v\n%.500s", err, buf.String())
	}
	if dump.Count == 0 {
		t.Fatal("WriteHistory captured nothing")
	}

	if err := f.CloseOps(); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseOps(); err != nil {
		t.Fatalf("second CloseOps: %v", err)
	}
}

func TestFleetHistoryWithoutServer(t *testing.T) {
	// WithHistory alone samples in-process; WriteHistory is the only tap.
	f, err := distscroll.NewFleet(2,
		distscroll.WithEntries(10),
		distscroll.WithSeed(2),
		distscroll.WithHistory(16, 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.CloseOps()
	if f.OpsURL() != "" {
		t.Fatalf("OpsURL without server = %q", f.OpsURL())
	}
	if _, err := f.RunAll(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		if err := f.WriteHistory(&buf, 4); err != nil {
			t.Fatal(err)
		}
		var doc historyDoc
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("WriteHistory not JSON: %v", err)
		}
		if doc.Count >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never captured: count=%d", doc.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := f.CloseOps(); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryOptionValidation(t *testing.T) {
	// Device constructor rejects the fleet-only history option.
	if _, err := distscroll.New(distscroll.WithEntries(10), distscroll.WithHistory(0, 0)); err == nil {
		t.Fatal("New accepted WithHistory")
	}
	// Negative parameters are configuration errors.
	if _, err := distscroll.NewFleet(2, distscroll.WithEntries(10), distscroll.WithHistory(-1, 0)); err == nil {
		t.Fatal("negative window count accepted")
	}
	if _, err := distscroll.NewFleet(2, distscroll.WithEntries(10), distscroll.WithHistory(0, -time.Second)); err == nil {
		t.Fatal("negative interval accepted")
	}
	// WriteHistory without the option is an error, not a panic.
	f, err := distscroll.NewFleet(2, distscroll.WithEntries(10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteHistory(&buf, 0); err == nil {
		t.Fatal("WriteHistory without WithHistory succeeded")
	}
}
