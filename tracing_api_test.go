package distscroll_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll"
)

// TestWithTracingFleetExport runs a lossy reliable fleet with the public
// tracing handle and checks the report's TraceExport produces a valid
// Perfetto document with host-side slices and flow links.
func TestWithTracingFleetExport(t *testing.T) {
	tr := distscroll.NewTracing(distscroll.TracingOptions{})
	f, err := distscroll.NewFleet(4,
		distscroll.WithEntries(8),
		distscroll.WithSeed(11),
		distscroll.WithReliableDelivery(),
		distscroll.WithRadioLink(0.05, 2*time.Millisecond),
		distscroll.WithTracing(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceExport == nil {
		t.Fatal("FleetReport.TraceExport is nil with WithTracing attached")
	}
	var buf bytes.Buffer
	if err := rep.TraceExport.WritePerfetto(&buf, map[string]any{"devices": 4}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("TraceExport is not valid JSON: %v", err)
	}
	var slices, flows int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
		case "s":
			flows++
		}
	}
	if slices == 0 || flows == 0 {
		t.Fatalf("export has %d slices and %d flow starts, want both > 0", slices, flows)
	}
	if doc.OtherData["devices"] != float64(4) {
		t.Fatalf("otherData not threaded: %v", doc.OtherData)
	}

	var txt strings.Builder
	if err := rep.TraceExport.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "hub.demux") {
		t.Fatal("text dump has no hub.demux events")
	}
}

// TestWithTracingSingleDevice checks the handle works for a lone device:
// the caller keeps the handle and exports from it directly.
func TestWithTracingSingleDevice(t *testing.T) {
	tr := distscroll.NewTracing(distscroll.TracingOptions{
		FlightRecorder: true, Capacity: 256,
	})
	dev, err := distscroll.New(
		distscroll.WithEntries(6),
		distscroll.WithSeed(3),
		distscroll.WithTracing(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	dev.GlideTo(15, 500*time.Millisecond)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var txt strings.Builder
	if err := tr.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	if !strings.Contains(out, "firmware.sample") || !strings.Contains(out, "hub.demux") {
		t.Fatalf("single-device trace missing pipeline events:\n%.1000s", out)
	}
}

// TestWithTracingNil checks the option rejects a nil handle.
func TestWithTracingNil(t *testing.T) {
	if _, err := distscroll.New(distscroll.WithEntries(4), distscroll.WithTracing(nil)); err == nil {
		t.Fatal("WithTracing(nil) accepted")
	}
}
