// Package distscroll is a full simulation of DistScroll, the one-handed
// distance-based interaction device of Kranz, Holleis and Schmidt (ICDCS
// Workshops 2005).
//
// A Device assembles the complete prototype in software — Sharp GP2D120
// distance sensor, PIC-style ADC, Smart-Its board, two I2C chip-on-glass
// displays, push buttons, island mapping firmware and the RF link to a
// host — and navigates a hierarchical menu by varying the simulated
// distance between the device and the user's body:
//
//	dev, err := distscroll.New(distscroll.WithMenu(distscroll.PhoneMenu()))
//	if err != nil { ... }
//	defer dev.Close()
//	dev.OnScroll(func(e distscroll.Event) { fmt.Println("cursor:", e.Index) })
//	dev.GlideTo(10, time.Second) // move the device to 10 cm over 1 s
//	dev.Run(2 * time.Second)     // advance virtual time
//	dev.PressSelect()
//	dev.Run(time.Second)
//
// Everything runs on a deterministic virtual clock; nothing sleeps.
package distscroll

import (
	"errors"
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/adxl311"
	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/mapping"
)

// EventKind labels host-side events.
type EventKind string

// Event kinds delivered to handlers.
const (
	EventScroll EventKind = "scroll"
	EventSelect EventKind = "select"
	EventLevel  EventKind = "level"
)

// Event is a decoded device event.
type Event struct {
	Kind EventKind
	// Index is the entry index (scroll/select) or the new depth (level).
	Index int
	// Entry is the entry title where applicable.
	Entry string
	// At is the host arrival time on the virtual clock.
	At time.Duration
}

// Direction selects the scroll-direction mapping.
type Direction = mapping.Direction

// Direction values (paper Section 7, open question 4).
const (
	TowardsIsDown = mapping.TowardsIsDown
	TowardsIsUp   = mapping.TowardsIsUp
)

// Option configures a Device.
type Option func(*config) error

type config struct {
	core core.Config
	root *Item
	// opsAddr, slo and history configure the fleet-only live ops plane
	// (ops.go).
	opsAddr string
	slo     *SLO
	history *historyOptions
	// hubShards routes fleet frames through the networked ingest gateway
	// in loopback mode (fleet.go); 0 keeps the plain in-process hub.
	hubShards int
}

// WithMenu sets the navigated structure. Required unless WithEntries is
// used.
func WithMenu(root *Item) Option {
	return func(c *config) error {
		if root == nil {
			return errors.New("distscroll: nil menu")
		}
		c.root = root
		return nil
	}
}

// WithEntries sets a flat numbered list of n entries as the structure.
func WithEntries(n int) Option {
	return func(c *config) error {
		if n < 2 {
			return fmt.Errorf("distscroll: need at least 2 entries, got %d", n)
		}
		c.root = NumberedList(n)
		return nil
	}
}

// WithSeed seeds every stochastic model in the device.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.core.Seed = seed
		return nil
	}
}

// WithDeviceID tags the device's telemetry with a wire id (frame v1) so a
// host serving many DistScrolls can attribute frames. Zero — the default —
// is the conventional single-device id.
func WithDeviceID(id uint32) Option {
	return func(c *config) error {
		c.core.DeviceID = id
		return nil
	}
}

// WithScrollRange overrides the physical scroll range in cm (default 4–30,
// the paper's design range).
func WithScrollRange(nearCm, farCm float64) Option {
	return func(c *config) error {
		if farCm <= nearCm || nearCm <= 0 {
			return fmt.Errorf("distscroll: invalid range [%g,%g]", nearCm, farCm)
		}
		c.core.Firmware.Mapping.NearCm = nearCm
		c.core.Firmware.Mapping.FarCm = farCm
		return nil
	}
}

// WithDirection sets the motion→scroll mapping.
func WithDirection(d Direction) Option {
	return func(c *config) error {
		c.core.Firmware.Mapping.Direction = d
		return nil
	}
}

// WithGapFraction sets the island gap fraction in [0,1).
func WithGapFraction(f float64) Option {
	return func(c *config) error {
		if f < 0 || f >= 1 {
			return fmt.Errorf("distscroll: gap fraction %g not in [0,1)", f)
		}
		c.core.Firmware.Mapping.GapFraction = f
		return nil
	}
}

// WithSamplePeriod sets the firmware sensor sampling period.
func WithSamplePeriod(p time.Duration) Option {
	return func(c *config) error {
		if p <= 0 {
			return fmt.Errorf("distscroll: sample period must be positive")
		}
		c.core.Firmware.SamplePeriod = p
		return nil
	}
}

// WithFilter selects the firmware smoothing filter: "raw", "median3",
// "ema" or "median3+ema" (default).
func WithFilter(name string) Option {
	return func(c *config) error {
		switch name {
		case "raw":
			c.core.Firmware.Filter = firmware.Raw
		case "median3":
			c.core.Firmware.Filter = firmware.Median3
		case "ema":
			c.core.Firmware.Filter = firmware.EMA
		case "median3+ema", "":
			c.core.Firmware.Filter = firmware.MedianEMA
		default:
			return fmt.Errorf("distscroll: unknown filter %q", name)
		}
		return nil
	}
}

// WithRadioLink tunes the RF channel (loss probability and base latency).
func WithRadioLink(lossProb float64, latency time.Duration) Option {
	return func(c *config) error {
		if lossProb < 0 || lossProb > 1 {
			return fmt.Errorf("distscroll: loss probability %g not in [0,1]", lossProb)
		}
		c.core.Link.LossProb = lossProb
		c.core.Link.Latency = latency
		return nil
	}
}

// WithReliableDelivery wraps the RF channel in the ARQ retransmission
// layer: the host answers every frame with a cumulative ack over a
// host→device back-channel, unacknowledged frames are retransmitted with
// exponential backoff, and the event stream arrives complete and in order
// even on a lossy link. Ignored with WithoutRadio.
func WithReliableDelivery() Option {
	return func(c *config) error {
		c.core.Reliable = true
		return nil
	}
}

// WithLinkFaults injects correlated channel faults on top of the
// independent per-frame loss of WithRadioLink: burstProb is the per-frame
// chance to start a burst that drops burstLen consecutive frames (pass 0
// to disable; burstLen 0 takes the default length), and ackLossProb drops
// acks on the reverse channel of WithReliableDelivery.
func WithLinkFaults(burstProb float64, burstLen int, ackLossProb float64) Option {
	return func(c *config) error {
		if burstProb < 0 || burstProb > 1 {
			return fmt.Errorf("distscroll: burst probability %g not in [0,1]", burstProb)
		}
		if ackLossProb < 0 || ackLossProb > 1 {
			return fmt.Errorf("distscroll: ack loss probability %g not in [0,1]", ackLossProb)
		}
		if burstLen < 0 {
			return fmt.Errorf("distscroll: negative burst length %d", burstLen)
		}
		c.core.Link.BurstLossProb = burstProb
		c.core.Link.BurstLossLen = burstLen
		c.core.Link.AckLossProb = ackLossProb
		return nil
	}
}

// WithLoopbackHub routes the fleet's frames through the networked
// ingest gateway in its deterministic in-process (loopback) mode: every
// frame is framed for the wire, stream-decoded and demultiplexed across
// the given number of hub shards exactly as the TCP server would do it —
// but synchronously, with no socket and no wall clock, so a seeded fleet
// run reports byte-identical results to the plain in-process hub. Fleet
// only, like the ops plane. Shards <= 0 takes 1.
func WithLoopbackHub(shards int) Option {
	return func(c *config) error {
		if shards < 1 {
			shards = 1
		}
		c.hubShards = shards
		return nil
	}
}

// WithoutRadio removes the RF link (pure on-device operation).
func WithoutRadio() Option {
	return func(c *config) error {
		c.core.Radio = false
		return nil
	}
}

// WithDualSensor enables the second distance sensor the prototype carries
// ("only one is used in our experiments so far"): both are sampled and
// averaged for lower noise.
func WithDualSensor() Option {
	return func(c *config) error {
		c.core.Board.SecondSensor = true
		c.core.Firmware.DualSensor = true
		return nil
	}
}

// WithPowerSave enables sensor duty-cycling: after idleAfter without
// interaction the firmware samples at a slow idle cadence and wakes on
// the first scroll or button activity. Pass 0 for the default (2 s).
func WithPowerSave(idleAfter time.Duration) Option {
	return func(c *config) error {
		if idleAfter < 0 {
			return fmt.Errorf("distscroll: negative idle threshold")
		}
		c.core.Firmware.PowerSave = true
		c.core.Firmware.IdleAfter = idleAfter
		return nil
	}
}

// WithRelativeScrolling switches the firmware from the paper's absolute
// island mapping to speed-dependent relative scrolling: distance *changes*
// step the cursor, with higher gain at higher movement speed. Useful for
// structures far larger than the island mapping can resolve.
func WithRelativeScrolling() Option {
	return func(c *config) error {
		c.core.Firmware.Mode = firmware.Relative
		return nil
	}
}

// WithContextSensing enables the Section 4.3 extension: the accelerometer
// is sampled and the device classifies its posture and holding hand. With
// autoHandedness set (and the slidable two-button layout) the select/back
// roles follow the detected hand.
func WithContextSensing(autoHandedness bool) Option {
	return func(c *config) error {
		c.core.Firmware.ContextSensing = true
		c.core.Firmware.AutoHandedness = autoHandedness
		if autoHandedness {
			c.core.Board.Layout = buttons.SlidableTwoButtonLayout()
			c.core.Firmware.SelectButton = buttons.TopRight
			c.core.Firmware.BackButton = buttons.LeftUpper
		}
		return nil
	}
}

// Device is a complete simulated DistScroll system.
type Device struct {
	inner  *core.Device
	lookup func(index int) string

	onScroll func(Event)
	onSelect func(Event)
	onLevel  func(Event)
}

// New assembles a device.
func New(opts ...Option) (*Device, error) {
	cfg := config{core: core.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.root == nil {
		return nil, errors.New("distscroll: a menu is required (WithMenu or WithEntries)")
	}
	if cfg.opsAddr != "" || cfg.slo != nil || cfg.history != nil {
		return nil, errors.New("distscroll: the ops plane watches a fleet run; use NewFleet with WithOpsServer/WithSLOWatchdog/WithHistory")
	}
	if cfg.hubShards > 0 {
		return nil, errors.New("distscroll: the loopback hub serves a fleet; use NewFleet with WithLoopbackHub")
	}
	root := cfg.root.toNode()
	inner, err := core.NewDevice(cfg.core, root)
	if err != nil {
		return nil, err
	}
	d := &Device{inner: inner}
	d.lookup = func(index int) string {
		if index < 0 || index >= inner.Menu.Len() {
			return ""
		}
		return inner.Menu.Entries()[index].Title
	}
	inner.Host.OnScroll(func(e core.Event) {
		if d.onScroll != nil {
			d.onScroll(d.translate(EventScroll, e))
		}
	})
	inner.Host.OnSelect(func(e core.Event) {
		if d.onSelect != nil {
			d.onSelect(d.translate(EventSelect, e))
		}
	})
	inner.Host.OnLevel(func(e core.Event) {
		if d.onLevel != nil {
			d.onLevel(d.translate(EventLevel, e))
		}
	})
	return d, nil
}

func (d *Device) translate(kind EventKind, e core.Event) Event {
	ev := Event{Kind: kind, Index: e.Index, At: e.HostTime}
	if kind != EventLevel {
		ev.Entry = d.lookup(e.Index)
	}
	return ev
}

// Close stops the firmware loop. The device can still drain pending radio
// deliveries with Run.
func (d *Device) Close() { d.inner.Stop() }

// OnScroll registers the scroll handler (called from Run).
func (d *Device) OnScroll(fn func(Event)) { d.onScroll = fn }

// OnSelect registers the selection handler.
func (d *Device) OnSelect(fn func(Event)) { d.onSelect = fn }

// OnLevel registers the level-change handler.
func (d *Device) OnLevel(fn func(Event)) { d.onLevel = fn }

// Run advances virtual time by dur, executing firmware cycles, radio
// deliveries and handlers in order.
func (d *Device) Run(dur time.Duration) error { return d.inner.Run(dur) }

// Now returns the current virtual time.
func (d *Device) Now() time.Duration { return d.inner.Clock.Now() }

// SetDistance instantly positions the device at a body distance in cm.
func (d *Device) SetDistance(cm float64) { d.inner.SetDistance(cm) }

// Distance returns the current body distance in cm.
func (d *Device) Distance() float64 { return d.inner.Distance() }

// GlideTo moves the device smoothly (minimum-jerk) from its current
// distance to target cm over the given duration, then returns. Combine
// with Run: GlideTo schedules the motion, Run executes it. A single
// self-rescheduling callback samples the trajectory and stops exactly when
// the motion completes.
func (d *Device) GlideTo(targetCm float64, over time.Duration) {
	d.inner.GlideTo(targetCm, over)
}

// DistanceForEntry returns the physical distance in cm that selects entry
// index of the current level.
func (d *Device) DistanceForEntry(index int) (float64, error) {
	return d.inner.DistanceForEntry(index)
}

// PressSelect taps the select (thumb) button.
func (d *Device) PressSelect() { d.inner.PressSelect() }

// PressBack taps the back button.
func (d *Device) PressBack() { d.inner.PressBack() }

// Cursor returns the current entry index at the current level.
func (d *Device) Cursor() int { return d.inner.Cursor() }

// CurrentEntry returns the title under the cursor.
func (d *Device) CurrentEntry() string { return d.inner.Menu.CurrentEntry().Title }

// Path returns the breadcrumb from the root to the current entry.
func (d *Device) Path() string { return d.inner.Menu.CurrentEntry().Path() }

// Depth returns the current menu depth (root level = 0).
func (d *Device) Depth() int { return d.inner.Menu.Depth() }

// Entries returns the titles at the current level.
func (d *Device) Entries() []string {
	nodes := d.inner.Menu.Entries()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Title
	}
	return out
}

// TopDisplay returns the rendered top (menu) display.
func (d *Device) TopDisplay() string { return d.inner.TopDisplay() }

// BottomDisplay returns the rendered bottom (debug) display.
func (d *Device) BottomDisplay() string { return d.inner.BottomDisplay() }

// LinkStats reports RF link counters (zero without a radio).
func (d *Device) LinkStats() (sent, delivered, lost uint64) {
	if d.inner.Link == nil {
		return 0, 0, 0
	}
	s := d.inner.Link.Stats()
	return s.Sent, s.Delivered, s.Lost
}

// SetOrientation sets the device attitude sensed by the accelerometer
// (radians): pitch tilts the top towards (+) or away from (−) the user,
// roll tilts it sideways. Only meaningful with WithContextSensing.
func (d *Device) SetOrientation(pitchRad, rollRad float64) {
	d.inner.Board.Accel.SetOrientation(adxl311.Orientation{Pitch: pitchRad, Roll: rollRad})
}

// Context returns the detected posture/hand context as a string, or
// "unknown/unknown" without context sensing.
func (d *Device) Context() string {
	return d.inner.Firmware.Context().String()
}

// Internal exposes the assembled core device for advanced scenarios
// (experiment harnesses, custom environments). Most users never need it.
func (d *Device) Internal() *core.Device { return d.inner }
