package distscroll

import (
	"errors"
	"io"
	"time"

	"github.com/hcilab/distscroll/internal/tracing"
)

// TracingOptions parameterises a Tracing handle. The zero value retains
// every event with no flight recorder, no SLO and no automatic dumps —
// the configuration for a complete offline Perfetto export.
type TracingOptions struct {
	// FlightRecorder selects bounded mode: each device keeps only the last
	// Capacity events in a preallocated ring (recording never allocates)
	// and anomalies — retry-budget exhaustion, backlog overflow, post-drain
	// sequence gaps, SLO breaches — dump the ring as plain text to DumpTo.
	// Unbounded tracers retain everything for a complete export instead.
	FlightRecorder bool
	// Capacity is the per-device event capacity: the ring size in flight-
	// recorder mode (rounded up to a power of two), the initial allocation
	// otherwise. Zero takes 4096. In flight-recorder mode prefer small
	// rings — the recorder shares the cache with the frame pipeline, and a
	// few hundred events per device is ample post-mortem context.
	Capacity int
	// SLO is the end-to-end latency objective (device origin tick → host
	// admission). A frame exceeding it raises an anomaly. Zero disables
	// the check.
	SLO time.Duration
	// DumpTo receives the plain-text post-mortem dumps anomalies trigger.
	// Nil disables automatic dumps (anomaly events are still recorded).
	DumpTo io.Writer
	// DumpEvents bounds how many trailing events one dump prints (zero
	// takes 32); MaxDumps bounds automatic dumps per run (zero takes 8).
	DumpEvents int
	MaxDumps   int
}

// Tracing is the frame-level causal-tracing handle: every RF frame carries
// its trace context (device id, sequence number, origin tick) and accrues
// per-hop span events — firmware.sample, arq.enqueue, arq.tx/retx,
// link.deliver/drop, hub.demux with the session verdict — as it moves
// through the pipeline. Attach it with WithTracing; one handle may trace a
// whole fleet (each device records into its own single-writer buffer).
// After the run, WritePerfetto exports a Chrome Trace Event / Perfetto
// JSON document loadable in ui.perfetto.dev, and WriteText dumps the raw
// event log. Tracing never perturbs the simulation: results are identical
// with and without it attached.
type Tracing struct {
	tracer *tracing.Tracer
}

// NewTracing returns a tracing handle with the given options.
func NewTracing(o TracingOptions) *Tracing {
	return &Tracing{tracer: tracing.New(tracing.Config{
		Capacity:   o.Capacity,
		Bounded:    o.FlightRecorder,
		SLO:        o.SLO,
		DumpTo:     o.DumpTo,
		DumpEvents: o.DumpEvents,
		MaxDumps:   o.MaxDumps,
	})}
}

// WritePerfetto writes the recorded spans as a Chrome Trace Event JSON
// document: one process track per device (firmware / ARQ / link threads)
// and one host-session track per device, with per-frame flow links from
// the firmware sample to the session verdict. Load it in ui.perfetto.dev
// or chrome://tracing. metadata is attached as the document's otherData
// (pass nil for none).
func (t *Tracing) WritePerfetto(w io.Writer, metadata map[string]any) error {
	if t == nil {
		return errors.New("distscroll: nil tracing handle")
	}
	return t.tracer.WritePerfetto(w, metadata)
}

// WriteText writes every recorder's retained events as plain text — the
// manual post-mortem (flight-recorder anomalies produce the automatic one).
func (t *Tracing) WriteText(w io.Writer) error {
	if t == nil {
		return errors.New("distscroll: nil tracing handle")
	}
	return t.tracer.WriteText(w)
}

// Dumps returns how many automatic flight-recorder dumps fired during the
// run — nonzero means an anomaly (abandoned frames, sequence gaps, SLO
// breaches) was captured.
func (t *Tracing) Dumps() uint64 { return t.tracer.Dumps() }

// WithTracing attaches the frame-level causal tracer to the device (or to
// every device of a fleet): each frame's journey from firmware sample to
// session admission is recorded as span events exportable to Perfetto,
// and in flight-recorder mode anomalies dump the trailing events for
// post-mortem analysis. The demux hot path stays allocation-free with
// tracing attached.
func WithTracing(t *Tracing) Option {
	return func(c *config) error {
		if t == nil {
			return errors.New("distscroll: nil tracing handle (use NewTracing)")
		}
		c.core.Tracing = t.tracer
		return nil
	}
}
